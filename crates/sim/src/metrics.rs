//! Metrics recording: counters, time series, log-bucketed histograms, and
//! fixed-width windowed series (the live metrics plane's storage format).
//!
//! Every experiment binary reads its table/figure data out of the world's
//! [`Metrics`] sink after the run; the live runtime additionally merges
//! per-thread sinks into a shared one every flush interval so the same
//! data is readable *during* the run.

use std::collections::HashMap;

use fuxi_obs::export::json_string;
use fuxi_obs::window::{WindowRing, DEFAULT_RETAIN, DEFAULT_WINDOW_S};

/// A log-bucketed latency/size histogram with exact count/sum/min/max.
/// Buckets are powers of `2^(1/4)` (≈19% wide), giving percentile estimates
/// within a few percent across nine orders of magnitude — plenty for the
/// paper's "average 0.88 ms, peak below 3 ms" style of claims.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const BUCKETS: usize = 160; // covers [1e-9, ~1e3) with 4 buckets per octave
const SCALE: f64 = 4.0; // buckets per doubling

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v <= 1e-9 {
            return 0;
        }
        let idx = ((v / 1e-9).log2() * SCALE).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Lower bound of bucket `i`.
    fn bucket_value(i: usize) -> f64 {
        1e-9 * 2f64.powf(i as f64 / SCALE)
    }

    /// Record.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of containers.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Min.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Max.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile `q` in [0, 1]: linearly interpolated within the
    /// winning bucket (assuming a uniform distribution inside it), rather
    /// than returning the bucket's upper bound — the latter biased every
    /// estimate upward by up to one full ≈19%-wide bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = Self::bucket_value(i);
                let hi = Self::bucket_value(i + 1);
                // Rank position inside this bucket, in (0, 1].
                let frac = (target - seen) as f64 / c as f64;
                return (lo + frac * (hi - lo)).min(self.max).max(self.min);
            }
            seen += c;
        }
        self.max
    }

    /// Merge.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A ring of per-window [`Histogram`]s keyed by absolute window index,
/// mirroring [`WindowRing`]'s retention and merge semantics — the live
/// plane's source for *recent* latency quantiles (e.g. the sched-p99
/// watchdog rule), as opposed to the run-lifetime histogram.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    width_s: f64,
    retain: usize,
    head: Option<i64>,
    /// `slots[idx.rem_euclid(retain)]` is valid iff its stored index
    /// matches; stale entries are lazily reset.
    slots: Vec<(i64, Histogram)>,
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new(DEFAULT_WINDOW_S, DEFAULT_RETAIN)
    }
}

impl WindowedHistogram {
    /// Ring with the given window width (seconds) and retention count.
    pub fn new(width_s: f64, retain: usize) -> WindowedHistogram {
        let retain = retain.max(1);
        WindowedHistogram {
            width_s: if width_s > 0.0 { width_s } else { DEFAULT_WINDOW_S },
            retain,
            head: None,
            slots: vec![(i64::MIN, Histogram::new()); retain],
        }
    }

    fn slot_mut(&mut self, idx: i64) -> &mut Histogram {
        let pos = idx.rem_euclid(self.retain as i64) as usize;
        let slot = &mut self.slots[pos];
        if slot.0 != idx {
            *slot = (idx, Histogram::new());
        }
        &mut slot.1
    }

    /// Records `v` into the window containing `t_s`. Values older than
    /// the retention horizon are dropped.
    pub fn record(&mut self, t_s: f64, v: f64) {
        let idx = (t_s / self.width_s).floor() as i64;
        let head = self.head.map_or(idx, |h| h.max(idx));
        self.head = Some(head);
        if idx > head - self.retain as i64 {
            self.slot_mut(idx).record(v);
        }
    }

    /// Merges another ring with the same width/retention. Associative and
    /// commutative, like [`WindowRing::merge`].
    pub fn merge(&mut self, other: &WindowedHistogram) {
        debug_assert_eq!(self.width_s, other.width_s, "window width mismatch");
        let head = match (self.head, other.head) {
            (Some(a), Some(b)) => a.max(b),
            (a, b) => match a.or(b) {
                Some(h) => h,
                None => return,
            },
        };
        self.head = Some(head);
        let horizon = head - self.retain as i64;
        for (idx, h) in &other.slots {
            if *idx != i64::MIN && *idx > horizon && h.count() > 0 {
                self.slot_mut(*idx).merge(h);
            }
        }
        for slot in &mut self.slots {
            if slot.0 != i64::MIN && slot.0 <= horizon {
                *slot = (i64::MIN, Histogram::new());
            }
        }
    }

    /// Populated windows within retention, ascending by absolute index.
    pub fn windows(&self) -> Vec<(i64, &Histogram)> {
        let Some(head) = self.head else { return Vec::new() };
        let horizon = head - self.retain as i64;
        let mut out: Vec<(i64, &Histogram)> = self
            .slots
            .iter()
            .filter(|(idx, h)| *idx != i64::MIN && *idx > horizon && h.count() > 0)
            .map(|(idx, h)| (*idx, h))
            .collect();
        out.sort_by_key(|(idx, _)| *idx);
        out
    }

    /// One histogram merging every retained window — quantiles over the
    /// last ~minute rather than the whole run.
    pub fn merged(&self) -> Histogram {
        let mut out = Histogram::new();
        for (_, h) in self.windows() {
            out.merge(h);
        }
        out
    }

    /// Samples inside the retained windows.
    pub fn count(&self) -> u64 {
        self.windows().iter().map(|(_, h)| h.count()).sum()
    }
}

/// The per-world metrics sink.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    series: HashMap<String, Vec<(f64, f64)>>,
    histograms: HashMap<String, Histogram>,
    windows: HashMap<String, WindowRing>,
    whistograms: HashMap<String, WindowedHistogram>,
}

impl Metrics {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by `by`.
    pub fn count(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds `delta` (may be negative) to gauge `name`. Gauges let many
    /// actors maintain one cluster-wide quantity (e.g. the paper's
    /// `AM_obtained` / `FA_planned` curves) that a sampler turns into a
    /// series.
    pub fn gauge_add(&mut self, name: &str, delta: f64) {
        *self.gauges.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Gauge.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Appends `(t_seconds, value)` to time series `name`.
    pub fn push_series(&mut self, name: &str, t_s: f64, v: f64) {
        self.series.entry(name.to_owned()).or_default().push((t_s, v));
    }

    /// Series.
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Series names.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Records `v` into histogram `name`.
    pub fn record(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_owned()).or_default().record(v);
    }

    /// Histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Adds `delta` to the windowed counter `name` at time `t_s` (read
    /// back as a rate via [`WindowRing::rate_per_sec`]).
    pub fn window_count(&mut self, name: &str, t_s: f64, delta: f64) {
        self.windows.entry(name.to_owned()).or_default().observe(t_s, delta);
    }

    /// Samples the instantaneous value `v` into the windowed gauge `name`
    /// at time `t_s` (read back via `last`/`min`/`max` per window — this
    /// is what makes live mailbox backlog visible, not just its high-water
    /// mark).
    pub fn window_sample(&mut self, name: &str, t_s: f64, v: f64) {
        self.windows.entry(name.to_owned()).or_default().observe(t_s, v);
    }

    /// Records `v` into the windowed histogram `name` at time `t_s`.
    pub fn window_record(&mut self, name: &str, t_s: f64, v: f64) {
        self.whistograms.entry(name.to_owned()).or_default().record(t_s, v);
    }

    /// Windowed series (counter or gauge semantics are the caller's).
    pub fn window(&self, name: &str) -> Option<&WindowRing> {
        self.windows.get(name)
    }

    /// Windowed histogram.
    pub fn window_histogram(&self, name: &str) -> Option<&WindowedHistogram> {
        self.whistograms.get(name)
    }

    /// Time-weighted mean of a series: the trapezoid integral of `v` over
    /// `t` divided by the covered span. Unlike the unweighted mean, bursts
    /// of dense sampling don't over-weight the sampled value.
    pub fn series_mean(&self, name: &str) -> f64 {
        let s = self.series(name);
        match s.len() {
            0 => 0.0,
            1 => s[0].1,
            _ => {
                let span = s[s.len() - 1].0 - s[0].0;
                if span <= 0.0 {
                    // Degenerate: all points share one timestamp.
                    return self.series_mean_unweighted(name);
                }
                let area: f64 = s
                    .windows(2)
                    .map(|w| 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0))
                    .sum();
                area / span
            }
        }
    }

    /// Mean of a series' values ignoring sample spacing (the pre-existing
    /// behaviour; kept for consumers that sample on a strict cadence).
    pub fn series_mean_unweighted(&self, name: &str) -> f64 {
        let s = self.series(name);
        if s.is_empty() {
            0.0
        } else {
            s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64
        }
    }

    /// Counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sets gauge `name` to an absolute value (sampled quantities like
    /// mailbox depths, where deltas from many writers make no sense).
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Sets gauge `name` to `v` if `v` exceeds the current value — a
    /// high-water mark across many reporting threads.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_owned()).or_insert(f64::NEG_INFINITY);
        if v > *g {
            *g = v;
        }
    }

    /// Merges another sink into this one: counters and gauges add,
    /// histograms merge bucket-wise, series concatenate (re-sorted by
    /// time so exports stay monotone). The live runtime gives every actor
    /// thread its own `Metrics` and folds them together at shutdown.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, pts) in &other.series {
            let s = self.series.entry(k.clone()).or_default();
            s.extend_from_slice(pts);
            s.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
        // Clone-on-first-sight keeps the source ring's width/retention.
        for (k, w) in &other.windows {
            match self.windows.entry(k.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(w),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(w.clone());
                }
            }
        }
        for (k, w) in &other.whistograms {
            match self.whistograms.entry(k.clone()) {
                std::collections::hash_map::Entry::Occupied(mut e) => e.get_mut().merge(w),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(w.clone());
                }
            }
        }
    }

    /// A deterministic JSON snapshot of every counter, gauge, histogram
    /// (count/mean/min/max/p50/p95/p99), windowed series, and windowed
    /// histogram, keys sorted and escaped. Series are summarised by length
    /// and time-weighted mean rather than dumped point-by-point; windowed
    /// series report their retained windows in full.
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\":{");
        let mut keys: Vec<&String> = self.counters.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), self.counters[*k]);
        }
        out.push_str("},\"gauges\":{");
        let mut keys: Vec<&String> = self.gauges.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(k), self.gauges[*k]);
        }
        out.push_str("},\"histograms\":{");
        let mut keys: Vec<&String> = self.histograms.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = &self.histograms[*k];
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"mean\":{:.9},\"min\":{:.9},\"max\":{:.9},\"p50\":{:.9},\"p95\":{:.9},\"p99\":{:.9}}}",
                json_string(k),
                h.count(),
                h.mean(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99)
            );
        }
        out.push_str("},\"series\":{");
        let mut keys: Vec<&String> = self.series.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"points\":{},\"mean\":{:.9}}}",
                json_string(k),
                self.series[*k].len(),
                self.series_mean(k)
            );
        }
        out.push_str("},\"windows\":{");
        let mut keys: Vec<&String> = self.windows.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let w = &self.windows[*k];
            let _ = write!(
                out,
                "{}:{{\"width_s\":{},\"total_count\":{},\"total_sum\":{:.9},\"windows\":[",
                json_string(k),
                w.width_s(),
                w.total_count,
                w.total_sum
            );
            for (j, (idx, agg)) in w.windows().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "[{},{},{:.9},{:.9},{:.9},{:.9}]",
                    idx, agg.count, agg.sum, agg.min, agg.max, agg.last
                );
            }
            out.push_str("]}");
        }
        out.push_str("},\"windowed_histograms\":{");
        let mut keys: Vec<&String> = self.whistograms.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let merged = self.whistograms[*k].merged();
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"p50\":{:.9},\"p95\":{:.9},\"p99\":{:.9}}}",
                json_string(k),
                merged.count(),
                merged.quantile(0.5),
                merged.quantile(0.95),
                merged.quantile(0.99)
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("msgs", 1);
        m.count("msgs", 2);
        assert_eq!(m.counter("msgs"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn series_append_and_mean() {
        let mut m = Metrics::new();
        m.push_series("util", 0.0, 10.0);
        m.push_series("util", 1.0, 20.0);
        assert_eq!(m.series("util").len(), 2);
        assert!((m.series_mean("util") - 15.0).abs() < 1e-12);
        assert!((m.series_mean_unweighted("util") - 15.0).abs() < 1e-12);
    }

    #[test]
    fn series_mean_is_time_weighted() {
        let mut m = Metrics::new();
        // v=0 for 10 s, then a burst of v=100 samples within 1 s: the
        // unweighted mean is dragged to ~75, the trapezoid mean stays low.
        m.push_series("u", 0.0, 0.0);
        m.push_series("u", 10.0, 0.0);
        m.push_series("u", 10.5, 100.0);
        m.push_series("u", 11.0, 100.0);
        let w = m.series_mean("u");
        let uw = m.series_mean_unweighted("u");
        assert!((uw - 50.0).abs() < 1e-9, "unweighted = {uw}");
        // Integral: 0*10 + 50*0.5 + 100*0.5 = 75 over 11 s ≈ 6.82.
        assert!((w - 75.0 / 11.0).abs() < 1e-9, "weighted = {w}");
    }

    #[test]
    fn series_mean_degenerate_cases() {
        let mut m = Metrics::new();
        assert_eq!(m.series_mean("none"), 0.0);
        m.push_series("one", 3.0, 42.0);
        assert_eq!(m.series_mean("one"), 42.0);
        m.push_series("same_t", 1.0, 10.0);
        m.push_series("same_t", 1.0, 30.0);
        assert!((m.series_mean("same_t") - 20.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.4 && p50 < 0.65, "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 0.9 && p99 <= 1.01, "p99 = {p99}");
        assert!(h.quantile(1.0) <= 1.0 + 1e-9);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(0.001);
        let mut b = Histogram::new();
        b.record(0.1);
        b.record(0.2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 0.2);
        assert_eq!(a.min(), 0.001);
    }

    #[test]
    fn merge_combines_all_sinks() {
        let mut a = Metrics::new();
        a.count("msgs", 2);
        a.gauge_add("g", 1.0);
        a.record("lat", 0.001);
        a.push_series("s", 1.0, 10.0);
        let mut b = Metrics::new();
        b.count("msgs", 3);
        b.count("only_b", 1);
        b.gauge_add("g", 0.5);
        b.record("lat", 0.002);
        b.push_series("s", 0.5, 5.0);
        a.merge(&b);
        assert_eq!(a.counter("msgs"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert!((a.gauge("g") - 1.5).abs() < 1e-12);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        // Series re-sorted by time after concatenation.
        assert_eq!(a.series("s"), &[(0.5, 5.0), (1.0, 10.0)]);
    }

    #[test]
    fn gauge_set_and_max() {
        let mut m = Metrics::new();
        m.gauge_set("depth", 7.0);
        m.gauge_set("depth", 3.0);
        assert_eq!(m.gauge("depth"), 3.0);
        m.gauge_max("hwm", 5.0);
        m.gauge_max("hwm", 2.0);
        assert_eq!(m.gauge("hwm"), 5.0);
    }

    #[test]
    fn metrics_histogram_via_record() {
        let mut m = Metrics::new();
        m.record("lat", 0.5);
        m.record("lat", 1.5);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert!(m.histogram("none").is_none());
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_complete() {
        let mut m = Metrics::new();
        m.count("b", 2);
        m.count("a", 1);
        m.gauge_add("g", 1.5);
        m.record("lat", 0.001);
        m.push_series("s", 0.0, 1.0);
        m.push_series("s", 1.0, 3.0);
        let j = m.snapshot_json();
        assert_eq!(j, m.snapshot_json(), "snapshot must be deterministic");
        // Keys sorted: "a" before "b".
        let ia = j.find("\"a\":1").unwrap();
        let ib = j.find("\"b\":2").unwrap();
        assert!(ia < ib);
        assert!(j.contains("\"lat\":{\"count\":1"));
        assert!(j.contains("\"s\":{\"points\":2,\"mean\":2.000000000"));
    }

    /// Exact sample quantile with the same rank convention as
    /// `Histogram::quantile` (ceil(q*n), 1-based).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as usize;
        sorted[rank.min(n) - 1]
    }

    // Property test: for random samples and random q, the interpolated
    // histogram quantile stays within one ~19% bucket of the exact sample
    // quantile — both land in the same bucket by construction, so the ratio
    // is bounded by one bucket width (2^(1/4) ≈ 1.19) in either direction.
    use proptest::prelude::*;
    proptest! {
        #[test]
        fn quantile_interpolation_tracks_exact_quantiles(
            vals in prop::collection::vec(1e-6f64..10.0f64, 1..200),
            q in 0.0f64..1.0f64,
        ) {
            let mut h = Histogram::new();
            for &v in &vals {
                h.record(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            prop_assert!(
                est / exact > 1.0 / 1.20 && est / exact < 1.20,
                "q={} exact={} est={}", q, exact, est
            );
        }
    }

    #[test]
    fn snapshot_json_escapes_keys() {
        // A key with quotes, backslashes, and control characters must not
        // break the document (the pre-fix snapshot emitted them raw).
        let mut m = Metrics::new();
        m.count("evil\"key\\with\nspecials", 7);
        m.gauge_add("also\"evil", 1.0);
        m.record("hist\"key", 0.5);
        m.window_count("win\"key", 0.1, 1.0);
        let j = m.snapshot_json();
        assert!(j.contains("\"evil\\\"key\\\\with\\nspecials\":7"), "{j}");
        assert!(j.contains("\"also\\\"evil\":1"), "{j}");
        assert!(j.contains("\"hist\\\"key\":{"), "{j}");
        assert!(j.contains("\"win\\\"key\":{"), "{j}");
        assert!(!j.contains("evil\"key"), "raw quote leaked into the JSON");
    }

    #[test]
    fn windowed_recording_round_trips() {
        let mut m = Metrics::new();
        for i in 0..5 {
            m.window_count("rate", i as f64 + 0.5, 2.0);
            m.window_sample("depth", i as f64 + 0.5, i as f64);
            m.window_record("lat", i as f64 + 0.5, 0.001 * (i + 1) as f64);
        }
        let w = m.window("rate").unwrap();
        assert_eq!(w.total_count, 5);
        assert!((w.rate_per_sec(4.5) - 2.0).abs() < 1e-9);
        assert_eq!(m.window("depth").unwrap().latest(), Some(4.0));
        let wh = m.window_histogram("lat").unwrap();
        assert_eq!(wh.count(), 5);
        assert_eq!(wh.merged().count(), 5);
        assert!(m.window("absent").is_none());
        let j = m.snapshot_json();
        assert!(j.contains("\"rate\":{\"width_s\":1,\"total_count\":5"), "{j}");
        assert!(j.contains("\"windowed_histograms\":{\"lat\":{\"count\":5"), "{j}");
    }

    #[test]
    fn merge_combines_windows() {
        let mut a = Metrics::new();
        a.window_count("r", 0.5, 1.0);
        a.window_record("h", 0.5, 0.001);
        let mut b = Metrics::new();
        b.window_count("r", 0.6, 2.0);
        b.window_count("r", 1.6, 4.0);
        b.window_record("h", 1.5, 0.002);
        a.merge(&b);
        let w = a.window("r").unwrap();
        assert_eq!(w.total_count, 3);
        let ws = w.windows();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].1.sum, 3.0);
        assert_eq!(ws[1].1.sum, 4.0);
        assert_eq!(a.window_histogram("h").unwrap().count(), 2);
    }

    // Property: splitting one observation stream across any number of
    // per-thread sinks and merging them back — in any order — yields the
    // same windows, histograms, and totals as recording the stream into a
    // single sink. This is the invariant that lets fuxi-rt flush
    // per-thread metrics periodically instead of only at shutdown.
    proptest! {
        #[test]
        fn window_merge_any_order_equals_single_stream(
            obs in prop::collection::vec((0.0f64..30.0f64, -5.0f64..5.0f64, 0u8..3u8), 1..120),
            order_seed in 0usize..4usize,
        ) {
            let order = [[0usize, 1, 2], [2, 0, 1], [1, 2, 0], [2, 1, 0]][order_seed];
            let mut single = Metrics::new();
            let mut parts = [Metrics::new(), Metrics::new(), Metrics::new()];
            for (i, &(t, v, _)) in obs.iter().enumerate() {
                single.window_count("w", t, v);
                single.window_record("h", t, v.abs().max(1e-6));
                parts[i % 3].window_count("w", t, v);
                parts[i % 3].window_record("h", t, v.abs().max(1e-6));
            }
            let mut merged = Metrics::new();
            for &p in &order {
                merged.merge(&parts[p]);
            }
            let (sw, mw) = (single.window("w").unwrap(), merged.window("w").unwrap());
            // Window sets and order-insensitive aggregates must be exactly
            // equal; sums only up to FP addition-order noise.
            let (svw, mvw) = (sw.windows(), mw.windows());
            prop_assert_eq!(svw.len(), mvw.len());
            for ((si, sa), (mi, ma)) in svw.iter().zip(&mvw) {
                prop_assert_eq!(si, mi);
                prop_assert_eq!(sa.count, ma.count);
                prop_assert!((sa.sum - ma.sum).abs() < 1e-9);
                prop_assert_eq!(sa.min, ma.min);
                prop_assert_eq!(sa.max, ma.max);
                prop_assert_eq!(sa.last, ma.last);
                prop_assert_eq!(sa.last_t, ma.last_t);
            }
            prop_assert_eq!(sw.total_count, mw.total_count);
            prop_assert!((sw.total_sum - mw.total_sum).abs() < 1e-6);
            let (sh, mh) = (
                single.window_histogram("h").unwrap(),
                merged.window_histogram("h").unwrap(),
            );
            prop_assert_eq!(sh.count(), mh.count());
            prop_assert_eq!(sh.merged().quantile(0.99), mh.merged().quantile(0.99));
        }

        #[test]
        fn histogram_merge_is_order_independent(
            vals in prop::collection::vec(1e-6f64..100.0f64, 1..100),
            split in 1usize..4usize,
        ) {
            let mut single = Histogram::new();
            let mut parts = vec![Histogram::new(); split + 1];
            for (i, &v) in vals.iter().enumerate() {
                single.record(v);
                parts[i % (split + 1)].record(v);
            }
            // Forward and reverse merge orders must agree with each other
            // and with the single stream.
            let mut fwd = Histogram::new();
            for p in &parts {
                fwd.merge(p);
            }
            let mut rev = Histogram::new();
            for p in parts.iter().rev() {
                rev.merge(p);
            }
            for h in [&fwd, &rev] {
                prop_assert_eq!(h.count(), single.count());
                prop_assert!((h.sum() - single.sum()).abs() < 1e-9);
                prop_assert_eq!(h.min(), single.min());
                prop_assert_eq!(h.max(), single.max());
                for q in [0.5, 0.95, 0.99] {
                    prop_assert_eq!(h.quantile(q), single.quantile(q));
                }
            }
        }
    }

    #[test]
    fn quantile_interpolates_below_bucket_upper_bound() {
        // All mass in one bucket: the old implementation returned the
        // bucket's upper bound for every q; interpolation must spread
        // estimates across the bucket and bound them by the true extremes.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(0.00100);
        }
        for q in [0.01, 0.5, 0.99] {
            let v = h.quantile(q);
            assert!((v - 0.001).abs() < 1e-12, "q={q} -> {v}");
        }
    }
}
