//! Error types shared across the Fuxi crates.

use std::fmt;

/// Errors arising from protocol-level validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A delta referenced a ScheduleUnit the receiver does not know.
    UnknownUnit(u32),
    /// A delta referenced an application the receiver does not know.
    UnknownApp(u32),
    /// A sequence gap was detected on an incremental channel; the receiver
    /// must request a full-state sync.
    SequenceGap {
        /// Sequence number the receiver expected next.
        expected: u64,
        /// Sequence number that actually arrived.
        got: u64,
    },
    /// A message failed structural validation.
    Malformed(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnknownUnit(u) => write!(f, "unknown schedule unit u{u}"),
            ProtoError::UnknownApp(a) => write!(f, "unknown application app{a}"),
            ProtoError::SequenceGap { expected, got } => {
                write!(f, "sequence gap: expected {expected}, got {got}")
            }
            ProtoError::Malformed(s) => write!(f, "malformed message: {s}"),
        }
    }
}

impl std::error::Error for ProtoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            ProtoError::SequenceGap {
                expected: 3,
                got: 5
            }
            .to_string(),
            "sequence gap: expected 3, got 5"
        );
        assert_eq!(ProtoError::UnknownUnit(2).to_string(), "unknown schedule unit u2");
    }
}
