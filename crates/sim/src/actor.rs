//! Actors: the unit of concurrency in the simulated cluster.
//!
//! Every Fuxi component (FuxiMaster, FuxiAgent, JobMaster, TaskWorker, lock
//! service, clients) is an [`Actor`]: single-threaded state machines that
//! react to messages and timers through a [`Ctx`] handle onto the world.
//! Actors may be *placed* on a machine — then they die with it — or be
//! placeless services.

use crate::event::{EventKind, KernelMsg};
use crate::flow::FlowSpec;
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};
use crate::world::WorldCore;
use fuxi_obs::{SpanKind, TraceEvent, TraceId, Tracer};
use rand::rngs::SmallRng;
use std::fmt;

/// Address of an actor. Never reused within one world, so a stale address
/// reliably refers to a dead actor (messages to it are counted and dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// A placeholder address that is never alive (used before registration).
    pub const NONE: ActorId = ActorId(u32::MAX);
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Behaviour of one simulated component.
pub trait Actor<M: KernelMsg> {
    /// Called once when the actor comes to life (after spawn).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ActorId, msg: M);

    /// Called when a timer set via [`Ctx::timer`] fires. Timers cannot be
    /// cancelled; actors discard stale ones by tag/generation convention.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _tag: u64) {}
}

/// The handle through which an actor acts on the world. Borrowed for the
/// duration of one handler invocation.
pub struct Ctx<'a, M: KernelMsg> {
    pub(crate) core: &'a mut WorldCore<M>,
    pub(crate) self_id: ActorId,
}

impl<'a, M: KernelMsg> Ctx<'a, M> {
    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.time
    }

    /// This actor's address.
    #[inline]
    pub fn id(&self) -> ActorId {
        self.self_id
    }

    /// The machine this actor is placed on, if any.
    pub fn self_machine(&self) -> Option<u32> {
        self.core.machine_of(self.self_id)
    }

    /// Sends `msg` to `to` with modelled network latency.
    pub fn send(&mut self, to: ActorId, msg: M) {
        self.core.send_from(self.self_id, to, msg);
    }

    /// Sends `msg` to `to` after an explicit extra delay (e.g. modelling
    /// local processing time before the reply goes out).
    pub fn send_after(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.core.send_from_after(self.self_id, to, msg, delay);
    }

    /// Arms a timer that fires `on_timer(tag)` after `delay`.
    pub fn timer(&mut self, delay: SimDuration, tag: u64) {
        let at = self.core.time + delay;
        self.core.queue.push(
            at,
            EventKind::Timer {
                actor: self.self_id,
                tag,
            },
        );
    }

    /// Spawns a new actor, optionally placed on a machine. The spawned
    /// actor's `on_start` runs after the current handler returns. Returns
    /// the new actor's address immediately so it can be communicated.
    pub fn spawn(&mut self, machine: Option<u32>, actor: Box<dyn Actor<M>>) -> ActorId {
        self.core.queue_spawn(machine, actor)
    }

    /// Terminates another actor after the current handler returns.
    pub fn kill(&mut self, id: ActorId) {
        self.core.queue_kill(id);
    }

    /// Terminates this actor after the current handler returns.
    pub fn kill_self(&mut self) {
        self.core.queue_kill(self.self_id);
    }

    /// `true` if `id` refers to a live actor.
    pub fn alive(&self, id: ActorId) -> bool {
        self.core.actor_alive(id)
    }

    /// The machine a live actor is placed on.
    pub fn machine_of(&self, id: ActorId) -> Option<u32> {
        self.core.machine_of(id)
    }

    /// `true` if machine `m` is up.
    pub fn machine_up(&self, m: u32) -> bool {
        self.core.machine_up(m)
    }

    /// The execution speed factor of machine `m` (1.0 nominal; SlowMachine
    /// faults lower it).
    pub fn machine_speed(&self, m: u32) -> f64 {
        self.core.machine_speed(m)
    }

    /// `true` if process launches currently succeed on machine `m`
    /// (PartialWorkerFailure faults turn this off).
    pub fn launch_ok(&self, m: u32) -> bool {
        self.core.launch_ok(m)
    }

    /// Rack of machine `m` (from the world's configuration).
    pub fn rack_of(&self, m: u32) -> u32 {
        self.core.rack_of(m)
    }

    /// Number of machines in the world.
    pub fn n_machines(&self) -> usize {
        self.core.n_machines()
    }

    /// Registers this actor in its machine's process table with opaque
    /// metadata — the simulation equivalent of appearing in `/proc`, which
    /// is how a restarted FuxiAgent adopts running workers (Section 4.3.1).
    pub fn register_proc(&mut self, meta: Vec<u8>) {
        self.core.register_proc(self.self_id, meta);
    }

    /// Reads machine `m`'s process table.
    pub fn procs_on(&self, m: u32) -> Vec<(ActorId, Vec<u8>)> {
        self.core.procs_on(m)
    }

    /// Starts a data flow. Completion arrives as `M::flow_done(tag, failed)`
    /// addressed to this actor.
    pub fn start_flow(&mut self, spec: FlowSpec) {
        self.core.start_flow(self.self_id, spec);
    }

    /// Cancels all flows this actor started that have not completed
    /// (no completion message will arrive for them).
    pub fn cancel_own_flows(&mut self) {
        self.core.cancel_flows_of(self.self_id);
    }

    /// Deterministic per-world RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.core.rng
    }

    /// The world's metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    // --- observability -----------------------------------------------------

    /// The causal trace under which this handler runs: inherited from the
    /// delivered message (or from the spawner for `on_start`), `NONE` for
    /// timer-driven activity unless [`Ctx::set_trace`] re-establishes it.
    #[inline]
    pub fn trace_id(&self) -> TraceId {
        self.core.current_trace
    }

    /// Re-establishes the causal context for the rest of this handler:
    /// subsequent sends, spawns, and trace events carry `trace`. Actors
    /// with a durable causal identity (a JobMaster belongs to exactly one
    /// job) call this at the top of timer handlers.
    #[inline]
    pub fn set_trace(&mut self, trace: TraceId) {
        self.core.current_trace = trace;
    }

    /// Sends `msg` under an explicit trace (overriding the inherited one) —
    /// used where one handler acts for many causal chains, e.g. the
    /// FuxiMaster flushing batched grants for several jobs.
    pub fn send_traced(&mut self, to: ActorId, msg: M, trace: TraceId) {
        self.core
            .send_from_traced(self.self_id, to, msg, SimDuration::ZERO, trace);
    }

    /// Records a typed trace event under the current trace.
    #[inline]
    pub fn trace(&mut self, event: TraceEvent) {
        self.core.trace_event(self.self_id, event);
    }

    /// Records a typed trace event under an explicit trace.
    #[inline]
    pub fn trace_as(&mut self, trace: TraceId, event: TraceEvent) {
        self.core.trace_event_as(self.self_id, trace, event);
    }

    /// Records a completed span: `wall_s` of measured wall-clock work at
    /// the current simulated time.
    pub fn span(&mut self, kind: SpanKind, wall_s: f64) {
        let t_s = self.core.time.as_secs_f64();
        let trace = self.core.current_trace;
        self.core.tracer.span(t_s, self.self_id.0, trace, kind, wall_s);
    }

    /// Forces a flight-recorder dump (invariant violations, failover).
    pub fn flight_dump(&mut self, reason: &'static str) {
        let t_s = self.core.time.as_secs_f64();
        self.core.tracer.dump(t_s, reason);
    }

    /// Read access to the tracer (rarely needed by actors).
    pub fn tracer(&self) -> &Tracer {
        &self.core.tracer
    }
}
