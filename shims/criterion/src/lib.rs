//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a small wall-clock benchmarking harness exposing the `criterion` API
//! subset the benches use: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology (simplified criterion): a warm-up phase sizes the per-sample
//! iteration count so one sample costs ~`sample_window`, then `samples`
//! timed samples are collected and the median / mean / p95 per-iteration
//! times are reported. Honouring `$CRITERION_QUICK=1` shortens runs for CI.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, same contract as criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One benchmark's statistics, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Stats {
    /// Benchmark id.
    pub name: String,
    /// Median ns/iter.
    pub median_ns: f64,
    /// Mean ns/iter.
    pub mean_ns: f64,
    /// 95th percentile ns/iter.
    pub p95_ns: f64,
    /// Total iterations measured.
    pub iterations: u64,
}

/// The bench driver.
pub struct Criterion {
    warmup: Duration,
    sample_window: Duration,
    samples: usize,
    /// Stats of every bench run so far (harness add-on; used by the
    /// `bench_snapshot` binary to export machine-readable baselines).
    pub collected: Vec<Stats>,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false);
        if quick {
            Self {
                warmup: Duration::from_millis(80),
                sample_window: Duration::from_millis(8),
                samples: 12,
                collected: Vec::new(),
            }
        } else {
            Self {
                warmup: Duration::from_millis(400),
                sample_window: Duration::from_millis(25),
                samples: 40,
                collected: Vec::new(),
            }
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints a criterion-style line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::Calibrate {
                deadline: Instant::now() + self.warmup,
                per_iter_ns: 0.0,
            },
        };
        // Warm-up + calibration: run until the deadline, tracking cost.
        f(&mut b);
        let per_iter_ns = match b.mode {
            Mode::Calibrate { per_iter_ns, .. } => per_iter_ns.max(0.1),
            _ => unreachable!(),
        };
        let window_ns = self.sample_window.as_nanos() as f64;
        let iters_per_sample = (window_ns / per_iter_ns).clamp(1.0, 1e9) as u64;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let mut sb = Bencher {
                mode: Mode::Measure {
                    iters: iters_per_sample,
                    elapsed: Duration::ZERO,
                },
            };
            f(&mut sb);
            let elapsed = match sb.mode {
                Mode::Measure { elapsed, .. } => elapsed,
                _ => unreachable!(),
            };
            per_iter.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let p95 = per_iter[(per_iter.len() as f64 * 0.95) as usize % per_iter.len()];
        println!(
            "{name:<48} time: [median {:>12} mean {:>12} p95 {:>12}] ({} iters)",
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(p95),
            total_iters
        );
        self.collected.push(Stats {
            name: name.to_owned(),
            median_ns: median,
            mean_ns: mean,
            p95_ns: p95,
            iterations: total_iters,
        });
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

enum Mode {
    Calibrate { deadline: Instant, per_iter_ns: f64 },
    Measure { iters: u64, elapsed: Duration },
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Times `routine`, exactly like criterion's `Bencher::iter`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match &mut self.mode {
            Mode::Calibrate {
                deadline,
                per_iter_ns,
            } => {
                let mut n = 0u64;
                let start = Instant::now();
                loop {
                    black_box(routine());
                    n += 1;
                    // Check the clock only every few iterations to keep
                    // calibration overhead negligible for fast routines.
                    if n.is_multiple_of(16) && Instant::now() >= *deadline {
                        break;
                    }
                }
                *per_iter_ns = start.elapsed().as_nanos() as f64 / n as f64;
            }
            Mode::Measure { iters, elapsed } => {
                let n = *iters;
                let start = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                *elapsed = start.elapsed();
            }
        }
    }
}

/// Same surface as criterion's macro; collects bench functions into one
/// runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Same surface as criterion's macro; emits `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_plausible() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut s = 0u64;
                for i in 0..100u64 {
                    s = s.wrapping_add(black_box(i));
                }
                s
            })
        });
        let st = &c.collected[0];
        assert!(st.median_ns > 0.0);
        assert!(st.iterations > 0);
    }
}
