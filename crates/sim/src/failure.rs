//! Scriptable fault injection (paper Section 5.4, Table 3).
//!
//! A [`FaultPlan`] is a list of `(time, fault)` pairs applied to a world.
//! The fault taxonomy matches the paper's injection experiment:
//! **NodeDown** (machine halts unexpectedly), **PartialWorkerFailure**
//! (disk corrupted — processes cannot be launched), **SlowMachine**
//! (deliberate slowdown), plus actor-level kills used for the
//! FuxiMasterFailure / JobMaster-failover experiments.

use crate::actor::ActorId;
use crate::event::KernelMsg;
use crate::time::SimTime;
use crate::world::World;

/// One injectable fault.
#[derive(Debug, Clone)]
pub enum Fault {
    /// The machine halts: all processes die, flows fail.
    NodeDown(u32),
    /// The machine comes back up empty.
    NodeRestart(u32),
    /// Worker launches fail on this machine while active.
    PartialWorkerFailure {
        /// Machine the fault applies to.
        machine: u32,
        /// Whether the fault is being applied (true) or cleared.
        active: bool,
    },
    /// Compute on the machine runs at `factor` (< 1 is slow).
    SlowMachine {
        /// Machine the fault applies to.
        machine: u32,
        /// Compute-speed multiplier (< 1 is slow).
        factor: f64,
    },
    /// Kill a single actor (e.g. the primary FuxiMaster or a JobMaster).
    KillActor(ActorId),
}

/// A time-ordered fault script.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add.
    pub fn add(&mut self, at: SimTime, fault: Fault) -> &mut Self {
        self.events.push((at, fault));
        self
    }

    /// With.
    pub fn with(mut self, at: SimTime, fault: Fault) -> Self {
        self.events.push((at, fault));
        self
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events.
    pub fn events(&self) -> &[(SimTime, Fault)] {
        &self.events
    }

    /// Installs every fault into the world's control timeline.
    pub fn install<M: KernelMsg>(&self, world: &mut World<M>) {
        for (at, fault) in self.events.clone() {
            world.at(at, move |w| apply(w, &fault));
        }
    }
}

/// Applies a single fault right now.
pub fn apply<M: KernelMsg>(world: &mut World<M>, fault: &Fault) {
    match *fault {
        Fault::NodeDown(m) => world.kill_machine(m),
        Fault::NodeRestart(m) => world.restart_machine(m),
        Fault::PartialWorkerFailure { machine, active } => {
            world.set_launch_ok(machine, !active);
            world.metrics_mut().count("fault.partial_worker", 1);
        }
        Fault::SlowMachine { machine, factor } => {
            world.set_machine_speed(machine, factor);
            world.metrics_mut().count("fault.slow_machine", 1);
        }
        Fault::KillActor(id) => {
            world.kill_actor(id);
            world.metrics_mut().count("fault.kill_actor", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, Ctx};
    use crate::world::WorldConfig;

    #[derive(Debug)]
    struct TMsg;
    impl KernelMsg for TMsg {
        fn flow_done(_: u64, _: bool) -> Self {
            TMsg
        }
    }
    struct Idle;
    impl Actor<TMsg> for Idle {
        fn on_message(&mut self, _: &mut Ctx<'_, TMsg>, _: ActorId, _: TMsg) {}
    }

    #[test]
    fn plan_applies_in_time_order() {
        let mut w: World<TMsg> = World::new(WorldConfig::uniform(4, 2, 1));
        let a = w.spawn(Some(1), Box::new(Idle));
        let plan = FaultPlan::new()
            .with(SimTime::from_secs(1), Fault::SlowMachine { machine: 0, factor: 0.5 })
            .with(SimTime::from_secs(2), Fault::NodeDown(1))
            .with(
                SimTime::from_secs(3),
                Fault::PartialWorkerFailure { machine: 2, active: true },
            );
        assert_eq!(plan.len(), 3);
        plan.install(&mut w);
        w.run_until(SimTime::from_secs(10));
        assert!(!w.machine_up(1));
        assert!(!w.actor_alive(a));
        assert_eq!(w.metrics().counter("fault.node_down"), 1);
        assert_eq!(w.metrics().counter("fault.slow_machine"), 1);
        assert_eq!(w.metrics().counter("fault.partial_worker"), 1);
    }

    #[test]
    fn restart_brings_machine_back_clean() {
        let mut w: World<TMsg> = World::new(WorldConfig::uniform(2, 2, 1));
        FaultPlan::new()
            .with(SimTime::from_secs(1), Fault::NodeDown(0))
            .with(SimTime::from_secs(2), Fault::NodeRestart(0))
            .install(&mut w);
        w.run_until(SimTime::from_secs(3));
        assert!(w.machine_up(0));
    }

    #[test]
    fn kill_actor_fault() {
        let mut w: World<TMsg> = World::new(WorldConfig::uniform(2, 2, 1));
        let a = w.spawn(None, Box::new(Idle));
        FaultPlan::new()
            .with(SimTime::from_secs(1), Fault::KillActor(a))
            .install(&mut w);
        w.run_until(SimTime::from_secs(2));
        assert!(!w.actor_alive(a));
    }
}
