//! Incremental resource requests and grants (paper Sections 3.1–3.2).
//!
//! The protocol's operational semantics, reconstructed from Figures 3–5:
//!
//! * A **ScheduleUnit** is a unit size of resource (e.g. `{1 core, 2 GB}`)
//!   with a priority. An application may define several.
//! * Per unit the application holds **wants** — *outstanding* (not yet
//!   granted) demand counts at three locality levels. The cluster-level want
//!   is the authoritative total outstanding demand; machine-/rack-level
//!   wants are locality refinements of it (Figure 5: App1 waits 4 on M1 and
//!   4 on M2, 9 on Rack1, 4 on Rack2, 14 overall).
//! * A **grant of `g` units on machine M** decrements the unit's want at
//!   `M`, at `rack(M)` and at cluster level, each floored at zero ("the
//!   relevant waiting requests will be decreased by the amount of assigned
//!   units").
//! * A **voluntary return** ("when some mappers finish ... only the unit
//!   number needs to be sent") releases granted resource without touching
//!   wants: that demand was satisfied and is now gone.
//! * A **revocation** by FuxiMaster (preemption, node death) releases the
//!   grant *and re-adds the demand at cluster level* — the application still
//!   wants the resource, but the machine it was on is no longer a good hint.
//!
//! Requests and grants both travel as *deltas*; [`crate::msg::SeqEnvelope`]
//! provides the ordering/idempotency layer and periodic full-state syncs
//! repair any divergence ("as a safety measurement, application masters
//! exchange with FuxiMaster the full state of resources periodically").

use crate::ids::{AppId, MachineId, Priority, RackId, UnitId};
use crate::resource::ResourceVec;
use crate::topology::Topology;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Definition of one ScheduleUnit (paper Figure 4: `slot_def` with priority
/// and per-dimension amounts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleUnitDef {
    /// Unit id, unique within the application.
    pub unit: UnitId,
    /// Scheduling priority of containers of this unit.
    pub priority: Priority,
    /// Resource size of one container (all dimensions must fit together).
    pub resource: ResourceVec,
}

impl ScheduleUnitDef {
    /// Creates a new instance with the given configuration.
    pub fn new(unit: UnitId, priority: Priority, resource: ResourceVec) -> Self {
        Self {
            unit,
            priority,
            resource,
        }
    }
}

/// Outstanding demand at the three locality levels. Invariant maintained by
/// all mutators: every machine/rack want is ≤ the cluster want (a locality
/// hint can never exceed total demand).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WantLevels {
    machine: BTreeMap<MachineId, u64>,
    rack: BTreeMap<RackId, u64>,
    cluster: u64,
}

impl WantLevels {
    /// Demand with no locality preference: `count` anywhere in the cluster.
    pub fn anywhere(count: u64) -> Self {
        Self {
            cluster: count,
            ..Self::default()
        }
    }

    /// Cluster-level quantity.
    pub fn cluster(&self) -> u64 {
        self.cluster
    }

    /// At machine.
    pub fn at_machine(&self, m: MachineId) -> u64 {
        self.machine.get(&m).copied().unwrap_or(0)
    }

    /// At rack.
    pub fn at_rack(&self, r: RackId) -> u64 {
        self.rack.get(&r).copied().unwrap_or(0)
    }

    /// Machines involved.
    pub fn machines(&self) -> impl Iterator<Item = (MachineId, u64)> + '_ {
        self.machine.iter().map(|(&m, &c)| (m, c))
    }

    /// Racks.
    pub fn racks(&self) -> impl Iterator<Item = (RackId, u64)> + '_ {
        self.rack.iter().map(|(&r, &c)| (r, c))
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.cluster == 0
    }

    /// Adds `delta` (positive or negative) at cluster level, clamping at zero
    /// and clamping machine/rack hints down to the new total.
    pub fn add_cluster(&mut self, delta: i64) {
        self.cluster = add_clamped(self.cluster, delta);
        self.clamp_hints();
    }

    /// Adjusts the machine-level hint; positive deltas also raise the cluster
    /// total when the hint would exceed it (a machine hint implies demand).
    pub fn add_machine(&mut self, m: MachineId, delta: i64) {
        let cur = self.at_machine(m);
        let new = add_clamped(cur, delta);
        set_or_remove(&mut self.machine, m, new);
        if new > self.cluster {
            self.cluster = new;
        }
    }

    /// Adjusts the rack-level hint, same total-raising rule as machines.
    pub fn add_rack(&mut self, r: RackId, delta: i64) {
        let cur = self.at_rack(r);
        let new = add_clamped(cur, delta);
        set_or_remove(&mut self.rack, r, new);
        if new > self.cluster {
            self.cluster = new;
        }
    }

    /// Records that `g` units were granted on machine `m`: decrements the
    /// want at `m`, at `m`'s rack, and at cluster level, floored at zero.
    /// Returns the number actually drawn from the cluster total (≤ `g`).
    pub fn satisfied_on(&mut self, topo: &Topology, m: MachineId, g: u64) -> u64 {
        let drawn = g.min(self.cluster);
        self.cluster -= drawn;
        let mcur = self.at_machine(m);
        set_or_remove(&mut self.machine, m, mcur.saturating_sub(g));
        let r = topo.rack_of(m);
        let rcur = self.at_rack(r);
        set_or_remove(&mut self.rack, r, rcur.saturating_sub(g));
        self.clamp_hints();
        drawn
    }

    /// Re-adds demand after a revocation: the grant is gone but the
    /// application still wants the capacity, with no locality hint attached.
    pub fn revoked(&mut self, count: u64) {
        self.cluster += count;
    }

    fn clamp_hints(&mut self) {
        let total = self.cluster;
        self.machine.retain(|_, c| {
            *c = (*c).min(total);
            *c > 0
        });
        self.rack.retain(|_, c| {
            *c = (*c).min(total);
            *c > 0
        });
    }
}

fn add_clamped(cur: u64, delta: i64) -> u64 {
    if delta >= 0 {
        cur.saturating_add(delta as u64)
    } else {
        cur.saturating_sub(delta.unsigned_abs())
    }
}

fn set_or_remove<K: Ord>(map: &mut BTreeMap<K, u64>, k: K, v: u64) {
    if v == 0 {
        map.remove(&k);
    } else {
        map.insert(k, v);
    }
}

/// Full request state for one ScheduleUnit, as exchanged during periodic
/// full-state syncs and during FuxiMaster failover (Figure 7: "each
/// application master re-sends its ScheduleUnit configuration, resource
/// request and location preference").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestState {
    /// The unit definition.
    pub def: ScheduleUnitDef,
    /// Outstanding demand at the three locality levels.
    pub wants: WantLevels,
    /// The "avoidance machine list" of Section 3.2.2: never grant here.
    pub avoid: BTreeSet<MachineId>,
}

impl RequestState {
    /// Creates a new instance with the given configuration.
    pub fn new(def: ScheduleUnitDef) -> Self {
        Self {
            def,
            wants: WantLevels::default(),
            avoid: BTreeSet::new(),
        }
    }

    /// Applies one incremental update. Mirrors the paper's rule that
    /// "quantities can be either positive or negative, meaning increase or
    /// decrease of resource request respectively".
    pub fn apply(&mut self, delta: &RequestDelta) {
        debug_assert_eq!(delta.unit, self.def.unit);
        // Cluster first: hints in the same delta are refinements of the new
        // total (Figure 3's request `{M1*2, C*10}` means 10 total of which 2
        // preferred on M1, not 12).
        if delta.cluster != 0 {
            self.wants.add_cluster(delta.cluster);
        }
        for &(m, d) in &delta.machine {
            self.wants.add_machine(m, d);
        }
        for &(r, d) in &delta.rack {
            self.wants.add_rack(r, d);
        }
        for &m in &delta.avoid_add {
            self.avoid.insert(m);
        }
        for &m in &delta.avoid_remove {
            self.avoid.remove(&m);
        }
    }
}

/// One incremental request update for one ScheduleUnit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RequestDelta {
    /// ScheduleUnit id.
    pub unit: UnitId,
    /// Machine this applies to.
    pub machine: Vec<(MachineId, i64)>,
    /// Rack index.
    pub rack: Vec<(RackId, i64)>,
    /// Cluster-level demand change.
    pub cluster: i64,
    /// Machines to add to the avoidance list.
    pub avoid_add: Vec<MachineId>,
    /// Machines to remove from the avoidance list.
    pub avoid_remove: Vec<MachineId>,
}

impl RequestDelta {
    /// Cluster-level quantity.
    pub fn cluster(unit: UnitId, delta: i64) -> Self {
        Self {
            unit,
            cluster: delta,
            ..Self::default()
        }
    }

    /// Machine index.
    pub fn machine(unit: UnitId, m: MachineId, delta: i64) -> Self {
        Self {
            unit,
            machine: vec![(m, delta)],
            ..Self::default()
        }
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.machine.is_empty()
            && self.rack.is_empty()
            && self.cluster == 0
            && self.avoid_add.is_empty()
            && self.avoid_remove.is_empty()
    }

    /// Merges `other` into `self` (used by FuxiMaster's batched handling of
    /// "frequently changing resource requests from one application",
    /// Section 3.4).
    pub fn merge(&mut self, other: &RequestDelta) {
        debug_assert_eq!(self.unit, other.unit);
        for &(m, d) in &other.machine {
            match self.machine.iter_mut().find(|(mm, _)| *mm == m) {
                Some((_, dd)) => *dd += d,
                None => self.machine.push((m, d)),
            }
        }
        for &(r, d) in &other.rack {
            match self.rack.iter_mut().find(|(rr, _)| *rr == r) {
                Some((_, dd)) => *dd += d,
                None => self.rack.push((r, d)),
            }
        }
        self.cluster += other.cluster;
        for &m in &other.avoid_add {
            self.avoid_remove.retain(|&x| x != m);
            if !self.avoid_add.contains(&m) {
                self.avoid_add.push(m);
            }
        }
        for &m in &other.avoid_remove {
            self.avoid_add.retain(|&x| x != m);
            if !self.avoid_remove.contains(&m) {
                self.avoid_remove.push(m);
            }
        }
    }
}

/// One incremental grant update: positive entries grant containers on a
/// machine, negative entries revoke them ("quantities can be either positive
/// or negative, indicating grant or revocation", Section 3.2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GrantDelta {
    /// ScheduleUnit id.
    pub unit: UnitId,
    /// Per-machine count changes (positive grant, negative revoke).
    pub changes: Vec<(MachineId, i64)>,
}

/// One per-(app, unit) capacity change on a machine, carried in a batched
/// `CapacityNotify`: the master coalesces all of one flush's decisions for
/// an agent into a single envelope instead of one message per decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityChange {
    /// Application id.
    pub app: AppId,
    /// ScheduleUnit id.
    pub unit: UnitId,
    /// Resource size of one container of this unit.
    pub unit_resource: ResourceVec,
    /// Signed container-count change (positive grant, negative revoke).
    pub delta: i64,
}

impl GrantDelta {
    /// Grant.
    pub fn grant(unit: UnitId, m: MachineId, count: u64) -> Self {
        Self {
            unit,
            changes: vec![(m, count as i64)],
        }
    }

    /// Revoke.
    pub fn revoke(unit: UnitId, m: MachineId, count: u64) -> Self {
        Self {
            unit,
            changes: vec![(m, -(count as i64))],
        }
    }
}

/// The application-master-side ledger of currently-held grants per unit —
/// the containers it owns and may reuse across tasks (Section 3.2.3).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GrantLedger {
    held: BTreeMap<UnitId, BTreeMap<MachineId, u64>>,
}

impl GrantLedger {
    /// Apply.
    pub fn apply(&mut self, delta: &GrantDelta) {
        let per_unit = self.held.entry(delta.unit).or_default();
        for &(m, d) in &delta.changes {
            let cur = per_unit.get(&m).copied().unwrap_or(0);
            set_or_remove(per_unit, m, add_clamped(cur, d));
        }
        if per_unit.is_empty() {
            self.held.remove(&delta.unit);
        }
    }

    /// Currently held grants per unit.
    pub fn held(&self, unit: UnitId, m: MachineId) -> u64 {
        self.held
            .get(&unit)
            .and_then(|per| per.get(&m).copied())
            .unwrap_or(0)
    }

    /// Total schedulable resources of the machine.
    pub fn total(&self, unit: UnitId) -> u64 {
        self.held
            .get(&unit)
            .map(|per| per.values().sum())
            .unwrap_or(0)
    }

    /// Machines involved.
    pub fn machines(&self, unit: UnitId) -> impl Iterator<Item = (MachineId, u64)> + '_ {
        self.held
            .get(&unit)
            .into_iter()
            .flat_map(|per| per.iter().map(|(&m, &c)| (m, c)))
    }

    /// ScheduleUnit definitions.
    pub fn units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.held.keys().copied()
    }

    /// Snapshot used for full-state sync / failover reconstruction.
    pub fn snapshot(&self) -> Vec<(UnitId, Vec<(MachineId, u64)>)> {
        self.held
            .iter()
            .map(|(&u, per)| (u, per.iter().map(|(&m, &c)| (m, c)).collect()))
            .collect()
    }

    /// Replaces the ledger with a full-state snapshot.
    pub fn restore(&mut self, snap: Vec<(UnitId, Vec<(MachineId, u64)>)>) {
        self.held.clear();
        for (u, per) in snap {
            let entry: BTreeMap<_, _> = per.into_iter().filter(|&(_, c)| c > 0).collect();
            if !entry.is_empty() {
                self.held.insert(u, entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{MachineSpec, TopologyBuilder};

    fn topo() -> Topology {
        // 2 racks x 2 machines: m0,m1 in r0; m2,m3 in r1.
        TopologyBuilder::new()
            .uniform(2, 2, MachineSpec::default())
            .build()
    }

    fn unit() -> ScheduleUnitDef {
        ScheduleUnitDef::new(UnitId(0), Priority::DEFAULT, ResourceVec::new(1000, 2048))
    }

    #[test]
    fn figure5_grant_decrements_all_levels() {
        // App1 from Figure 5: M1:4, M2:4 (rack1), Rack1:9, Rack2:4, total 14.
        let t = topo();
        let mut w = WantLevels::anywhere(14);
        w.add_machine(MachineId(0), 4);
        w.add_machine(MachineId(1), 4);
        w.add_rack(RackId(0), 9);
        w.add_rack(RackId(1), 4);
        // Grant 3 on m0: m0 want 4->1, rack0 9->6, cluster 14->11.
        let drawn = w.satisfied_on(&t, MachineId(0), 3);
        assert_eq!(drawn, 3);
        assert_eq!(w.at_machine(MachineId(0)), 1);
        assert_eq!(w.at_rack(RackId(0)), 6);
        assert_eq!(w.cluster(), 11);
        // Grant 5 on m3 (no machine hint): rack1 4->0, cluster 11->6.
        let drawn = w.satisfied_on(&t, MachineId(3), 5);
        assert_eq!(drawn, 5);
        assert_eq!(w.at_rack(RackId(1)), 0);
        assert_eq!(w.cluster(), 6);
    }

    #[test]
    fn grant_floors_wants_at_zero_and_caps_drawn_at_total() {
        let t = topo();
        let mut w = WantLevels::anywhere(2);
        w.add_machine(MachineId(0), 2);
        let drawn = w.satisfied_on(&t, MachineId(0), 5);
        assert_eq!(drawn, 2, "cannot draw more than total outstanding");
        assert!(w.is_empty());
        assert_eq!(w.at_machine(MachineId(0)), 0);
    }

    #[test]
    fn hints_are_clamped_to_cluster_total() {
        let mut w = WantLevels::anywhere(10);
        w.add_machine(MachineId(0), 6);
        w.add_cluster(-7); // total now 3; hint must clamp to 3
        assert_eq!(w.cluster(), 3);
        assert_eq!(w.at_machine(MachineId(0)), 3);
    }

    #[test]
    fn machine_hint_raises_total_when_larger() {
        let mut w = WantLevels::default();
        w.add_machine(MachineId(2), 5);
        assert_eq!(w.cluster(), 5, "a machine hint implies demand");
    }

    #[test]
    fn revocation_readds_cluster_demand() {
        let t = topo();
        let mut w = WantLevels::anywhere(4);
        w.satisfied_on(&t, MachineId(1), 4);
        assert!(w.is_empty());
        w.revoked(2);
        assert_eq!(w.cluster(), 2);
        assert_eq!(w.at_machine(MachineId(1)), 0, "no hint re-added for the bad machine");
    }

    #[test]
    fn request_state_applies_deltas_and_avoid_list() {
        let mut rs = RequestState::new(unit());
        rs.apply(&RequestDelta {
            unit: UnitId(0),
            machine: vec![(MachineId(0), 2)],
            rack: vec![(RackId(0), 5)],
            cluster: 10,
            avoid_add: vec![MachineId(3)],
            avoid_remove: vec![],
        });
        assert_eq!(rs.wants.cluster(), 10);
        assert_eq!(rs.wants.at_machine(MachineId(0)), 2);
        assert!(rs.avoid.contains(&MachineId(3)));
        rs.apply(&RequestDelta {
            unit: UnitId(0),
            machine: vec![],
            rack: vec![],
            cluster: -4,
            avoid_add: vec![],
            avoid_remove: vec![MachineId(3)],
        });
        assert_eq!(rs.wants.cluster(), 6);
        assert!(!rs.avoid.contains(&MachineId(3)));
    }

    #[test]
    fn delta_merge_accumulates() {
        let mut a = RequestDelta::cluster(UnitId(0), 5);
        a.merge(&RequestDelta::machine(UnitId(0), MachineId(1), 2));
        a.merge(&RequestDelta::cluster(UnitId(0), -1));
        a.merge(&RequestDelta::machine(UnitId(0), MachineId(1), 3));
        assert_eq!(a.cluster, 4);
        assert_eq!(a.machine, vec![(MachineId(1), 5)]);
    }

    #[test]
    fn delta_merge_avoid_lists_cancel() {
        let mut a = RequestDelta {
            unit: UnitId(0),
            avoid_add: vec![MachineId(1)],
            ..Default::default()
        };
        a.merge(&RequestDelta {
            unit: UnitId(0),
            avoid_remove: vec![MachineId(1)],
            ..Default::default()
        });
        assert!(a.avoid_add.is_empty());
        assert_eq!(a.avoid_remove, vec![MachineId(1)]);
    }

    #[test]
    fn grant_ledger_applies_grants_and_revocations() {
        let mut l = GrantLedger::default();
        l.apply(&GrantDelta::grant(UnitId(0), MachineId(1), 3));
        l.apply(&GrantDelta::grant(UnitId(0), MachineId(2), 2));
        assert_eq!(l.total(UnitId(0)), 5);
        l.apply(&GrantDelta::revoke(UnitId(0), MachineId(1), 1));
        assert_eq!(l.held(UnitId(0), MachineId(1)), 2);
        l.apply(&GrantDelta::revoke(UnitId(0), MachineId(1), 99));
        assert_eq!(l.held(UnitId(0), MachineId(1)), 0, "revoke clamps at zero");
        assert_eq!(l.total(UnitId(0)), 2);
    }

    #[test]
    fn grant_ledger_snapshot_roundtrip() {
        let mut l = GrantLedger::default();
        l.apply(&GrantDelta::grant(UnitId(0), MachineId(1), 3));
        l.apply(&GrantDelta::grant(UnitId(1), MachineId(0), 7));
        let snap = l.snapshot();
        let mut l2 = GrantLedger::default();
        l2.restore(snap);
        assert_eq!(l, l2);
    }
}
