//! Hashed timer wheel for the live runtime's clock thread.
//!
//! `ctx.timer` in a live actor becomes an entry here; the clock thread
//! ticks the wheel at a fixed granularity and fires whatever expired.
//! Insertion and expiry are O(1) amortised — the wheel hashes each
//! deadline into `slots[tick % n]`, so a slot holds every entry whose
//! deadline lands on that tick *in any round*; expiry filters by the
//! stored absolute tick.

use fuxi_sim::{SimDuration, SimTime};

/// A hashed timer wheel holding payloads of type `T`.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<(u64, T)>>,
    tick_us: u64,
    /// Last tick fully expired.
    cur_tick: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// A wheel of `n_slots` buckets at `tick_us` microseconds per tick.
    pub fn new(n_slots: usize, tick_us: u64) -> Self {
        assert!(n_slots > 0 && tick_us > 0);
        TimerWheel {
            slots: (0..n_slots).map(|_| Vec::new()).collect(),
            tick_us,
            cur_tick: 0,
            len: 0,
        }
    }

    /// Tick granularity.
    pub fn tick(&self) -> SimDuration {
        SimDuration::from_micros(self.tick_us)
    }

    /// Number of armed timers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Arms a timer firing at `now + delay` (rounded up to the next tick,
    /// and never before a tick the wheel already expired).
    pub fn arm(&mut self, now: SimTime, delay: SimDuration, payload: T) {
        let at_us = now.0.saturating_add(delay.0);
        let tick = at_us.div_ceil(self.tick_us).max(self.cur_tick + 1);
        let slot = (tick % self.slots.len() as u64) as usize;
        self.slots[slot].push((tick, payload));
        self.len += 1;
    }

    /// Fires every timer with a deadline at or before `now`; returns their
    /// payloads in deadline order.
    pub fn expire(&mut self, now: SimTime) -> Vec<T> {
        let now_tick = now.0 / self.tick_us;
        if now_tick <= self.cur_tick || self.len == 0 {
            self.cur_tick = self.cur_tick.max(now_tick);
            return Vec::new();
        }
        let n = self.slots.len() as u64;
        let mut fired: Vec<(u64, T)> = Vec::new();
        // Visit each slot at most once even if we slept through many rounds.
        let span = (now_tick - self.cur_tick).min(n);
        for t in self.cur_tick + 1..=self.cur_tick + span {
            let slot = (t % n) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].0 <= now_tick {
                    fired.push(bucket.swap_remove(i));
                } else {
                    i += 1;
                }
            }
        }
        self.cur_tick = now_tick;
        self.len -= fired.len();
        fired.sort_by_key(|&(t, _)| t);
        fired.into_iter().map(|(_, p)| p).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime(us)
    }
    fn d(us: u64) -> SimDuration {
        SimDuration(us)
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut w: TimerWheel<u32> = TimerWheel::new(8, 1000);
        w.arm(t(0), d(5_000), 5);
        w.arm(t(0), d(2_000), 2);
        w.arm(t(0), d(9_000), 9);
        assert_eq!(w.expire(t(1_000)), vec![]);
        assert_eq!(w.expire(t(6_000)), vec![2, 5]);
        assert_eq!(w.len(), 1);
        assert_eq!(w.expire(t(20_000)), vec![9]);
        assert!(w.is_empty());
    }

    #[test]
    fn multi_round_entries_wait_their_round() {
        // 4 slots: a 10-tick delay wraps 2.5 rounds.
        let mut w: TimerWheel<&str> = TimerWheel::new(4, 1000);
        w.arm(t(0), d(10_000), "late");
        w.arm(t(0), d(2_000), "early");
        assert_eq!(w.expire(t(4_000)), vec!["early"]);
        assert_eq!(w.expire(t(9_000)), Vec::<&str>::new());
        assert_eq!(w.expire(t(10_000)), vec!["late"]);
    }

    #[test]
    fn zero_delay_rounds_to_next_tick() {
        let mut w: TimerWheel<u8> = TimerWheel::new(8, 1000);
        w.expire(t(3_000));
        w.arm(t(3_000), d(0), 1);
        assert_eq!(w.expire(t(3_999)), vec![]);
        assert_eq!(w.expire(t(4_000)), vec![1]);
    }

    #[test]
    fn long_sleep_visits_every_slot_once() {
        let mut w: TimerWheel<u32> = TimerWheel::new(4, 1000);
        for i in 0..12u32 {
            w.arm(t(0), d(u64::from(i) * 1000 + 500), i);
        }
        // Sleep far past everything: all fire, in order, exactly once.
        let fired = w.expire(t(1_000_000));
        assert_eq!(fired, (0..12).collect::<Vec<_>>());
        assert!(w.is_empty());
    }
}
