//! Cluster construction and control.

use fuxi_agent::{AgentConfig, FuxiAgent, MasterFactory, MasterLaunch, WorkerFactory, WorkerLaunch};
use fuxi_apsara::{LockService, NameRegistry, PanguHandle, StoreHandle};
use fuxi_core::master::{FuxiMaster, MasterConfig};
use fuxi_job::job_master::{JobMaster, JobMasterConfig};
use fuxi_job::worker::TaskWorker;
use fuxi_job::JobDesc;
use fuxi_proto::msg::AppDescription;
use fuxi_proto::topology::{MachineSpec, Topology, TopologyBuilder};
use fuxi_proto::{JobId, MachineId, Msg, Priority, QuotaGroupId};
use fuxi_sim::{
    Actor, ActorId, Ctx, MachineConfig, NetConfig, SimDuration, SimTime, TraceId, TracerConfig,
    World, WorldConfig,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Cluster-wide configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of machines in the cluster.
    pub n_machines: usize,
    /// Machines per rack.
    pub rack_size: usize,
    /// Hardware description of every machine.
    pub machine_spec: MachineSpec,
    /// Deterministic RNG seed.
    pub seed: u64,
    /// Network latency/loss model.
    pub net: NetConfig,
    /// FuxiMaster configuration.
    pub master: MasterConfig,
    /// FuxiAgent configuration.
    pub agent: AgentConfig,
    /// JobMaster configuration applied to every job.
    pub jm: JobMasterConfig,
    /// Spawn a hot-standby FuxiMaster alongside the primary.
    pub standby_master: bool,
    /// Sampling interval for the utilization series (Figure 10).
    pub sample_interval: SimDuration,
    /// Observability configuration (tracer, flight recorder).
    pub obs: TracerConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            n_machines: 20,
            rack_size: 5,
            machine_spec: MachineSpec::default(),
            seed: 1,
            net: NetConfig::default(),
            master: MasterConfig::default(),
            agent: AgentConfig::default(),
            jm: JobMasterConfig::default(),
            standby_master: false,
            sample_interval: SimDuration::from_secs(1),
            obs: TracerConfig::default(),
        }
    }
}

/// Submission options.
#[derive(Debug, Clone)]
pub struct SubmitOpts {
    /// Scheduling priority.
    pub priority: Priority,
    /// Quota group the job bills against.
    pub quota_group: QuotaGroupId,
    /// Master binary package size, MB.
    pub master_package_mb: f64,
}

impl Default for SubmitOpts {
    fn default() -> Self {
        Self {
            priority: Priority::DEFAULT,
            quota_group: QuotaGroupId(0),
            master_package_mb: 100.0,
        }
    }
}

/// Client-observed job state.
#[derive(Debug, Clone, Default)]
pub struct JobState {
    /// Submission time, seconds.
    pub submitted_s: f64,
    /// Whether FuxiMaster acknowledged the submission.
    pub accepted: bool,
    /// Terminal state: (success, finish time, message).
    pub done: Option<(bool, f64, String)>,
}

type ClientLog = Arc<Mutex<BTreeMap<JobId, JobState>>>;

/// The client actor: submits jobs to the current master (retrying across
/// failovers) and records outcomes.
struct Client {
    naming: NameRegistry,
    log: ClientLog,
    pending: BTreeMap<JobId, AppDescription>,
}

impl Actor<Msg> for Client {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer(SimDuration::from_secs(2), 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        match msg {
            Msg::SubmitJob { job, desc, .. } => {
                self.log.lock().unwrap().entry(job).or_insert(JobState {
                    submitted_s: ctx.now().as_secs_f64(),
                    ..Default::default()
                });
                self.pending.insert(job, desc.clone());
                if let Some(fm) = self.naming.master() {
                    ctx.send(
                        fm,
                        Msg::SubmitJob {
                            job,
                            desc,
                            client: ctx.id(),
                        },
                    );
                }
            }
            Msg::JobAccepted { job, .. } => {
                if let Some(st) = self.log.lock().unwrap().get_mut(&job) {
                    st.accepted = true;
                }
                self.pending.remove(&job);
            }
            Msg::JobFinished {
                job,
                success,
                message,
                ..
            } => {
                if let Some(st) = self.log.lock().unwrap().get_mut(&job) {
                    st.done = Some((success, ctx.now().as_secs_f64(), message));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
        // Retry unaccepted submissions (master may have failed over). Each
        // retry re-opens the job's causal trace so a post-failover resubmit
        // joins the same chain as the original.
        if let Some(fm) = self.naming.master() {
            for (&job, desc) in &self.pending {
                ctx.send_traced(
                    fm,
                    Msg::SubmitJob {
                        job,
                        desc: desc.clone(),
                        client: ctx.id(),
                    },
                    TraceId::from_job(job.0),
                );
            }
        }
        ctx.timer(SimDuration::from_secs(2), 1);
    }
}

/// Samples shared gauges into the Figure 10 time series.
struct Sampler {
    interval: SimDuration,
}

impl Actor<Msg> for Sampler {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer(self.interval, 1);
    }
    fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
        let t = ctx.now().as_secs_f64();
        let m = ctx.metrics();
        for g in [
            "am.obtained_mem_mb",
            "am.obtained_cpu_milli",
            "fa.planned_mem_mb",
            "fa.planned_cpu_milli",
        ] {
            let v = m.gauge(g);
            m.push_series(g, t, v);
        }
        ctx.timer(self.interval, 1);
    }
}

/// A fully wired simulated Fuxi cluster.
pub struct Cluster {
    /// The simulated world everything runs in.
    pub world: World<Msg>,
    /// Shared name service.
    pub naming: NameRegistry,
    /// Shared cluster metrics view (the scrape endpoint and `fuxitop`
    /// read this; the primary master writes it). Survives failover for
    /// the same reason the name registry does.
    pub hub: fuxi_sim::obs::MetricsHub,
    /// Shared checkpoint store.
    pub store: StoreHandle,
    /// Shared DFS model.
    pub pangu: PanguHandle,
    /// Cluster topology.
    pub topo: Arc<Topology>,
    /// Lock-service actor.
    pub lock: ActorId,
    /// FuxiMaster actors spawned (primary and standbys).
    pub masters: Vec<ActorId>,
    /// Agent actor per machine (index = machine id).
    pub agents: Vec<ActorId>,
    /// Submitting client's actor address.
    pub client: ActorId,
    cfg: ClusterConfig,
    log: ClientLog,
    next_job: u32,
    master_factory: MasterFactory,
    worker_factory: WorkerFactory,
}

impl Cluster {
    /// Creates a new instance with the given configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        let topo = {
            // Exactly n_machines: full racks plus a remainder rack.
            let mut b = TopologyBuilder::new();
            let full = cfg.n_machines / cfg.rack_size;
            let rem = cfg.n_machines % cfg.rack_size;
            b = b.uniform(full, cfg.rack_size, cfg.machine_spec.clone());
            if rem > 0 {
                b = b.add_rack(vec![cfg.machine_spec.clone(); rem]);
            }
            Arc::new(b.build())
        };
        let machines: Vec<MachineConfig> = topo
            .machines()
            .map(|m| MachineConfig {
                rack: topo.rack_of(m).0,
                disk_bw_mbps: topo.spec(m).disk_bw_mbps,
                net_bw_mbps: topo.spec(m).net_bw_mbps,
            })
            .collect();
        let mut world: World<Msg> = World::new(WorldConfig {
            machines,
            net: cfg.net.clone(),
            seed: cfg.seed,
            obs: cfg.obs.clone(),
            kernel: fuxi_sim::QueueKernel::default(),
        });
        let naming = NameRegistry::new();
        let store = StoreHandle::new();
        let pangu = PanguHandle::new(cfg.seed.wrapping_mul(31).wrapping_add(7));

        let lock = world.spawn(None, Box::new(LockService::with_defaults()));

        // Factories: the simulation counterpart of downloaded binaries.
        let worker_cfg = cfg.jm.worker.clone();
        let worker_factory: WorkerFactory = Arc::new(move |launch: &WorkerLaunch| {
            Box::new(TaskWorker::from_spec(&launch.spec, worker_cfg.clone()))
        });
        let jm_cfg = cfg.jm.clone();
        let (n2, s2, p2, t2) = (naming.clone(), store.clone(), pangu.clone(), topo.clone());
        let master_factory: MasterFactory = Arc::new(move |launch: &MasterLaunch| {
            Box::new(JobMaster::new(
                launch.app,
                launch.job,
                jm_cfg.clone(),
                n2.clone(),
                s2.clone(),
                p2.clone(),
                t2.clone(),
                launch.desc.payload.clone(),
                launch.desc.master_resource.clone(),
            ))
        });

        // Masters: primary (+ optional hot standby). Both share one hub —
        // a promoted standby inherits the pending-age clocks and alert
        // history of the master it replaces.
        let hub = fuxi_sim::obs::MetricsHub::new(cfg.master.metrics.window_s);
        let mut masters = Vec::new();
        let n_masters = if cfg.standby_master { 2 } else { 1 };
        for _ in 0..n_masters {
            let m = world.spawn(
                None,
                Box::new(FuxiMaster::new(
                    cfg.master.clone(),
                    (*topo).clone(),
                    naming.clone(),
                    store.clone(),
                    lock,
                    hub.clone(),
                )),
            );
            masters.push(m);
        }

        // One agent per machine.
        let mut agents = Vec::new();
        for m in topo.machines() {
            let a = world.spawn(
                Some(m.0),
                Box::new(FuxiAgent::new(
                    m,
                    topo.spec(m).resources.clone(),
                    cfg.agent.clone(),
                    naming.clone(),
                    master_factory.clone(),
                    worker_factory.clone(),
                )),
            );
            agents.push(a);
        }

        let log: ClientLog = Arc::new(Mutex::new(BTreeMap::new()));
        let client = world.spawn(
            None,
            Box::new(Client {
                naming: naming.clone(),
                log: log.clone(),
                pending: BTreeMap::new(),
            }),
        );
        world.spawn(
            None,
            Box::new(Sampler {
                interval: cfg.sample_interval,
            }),
        );

        Self {
            world,
            naming,
            hub,
            store,
            pangu,
            topo,
            lock,
            masters,
            agents,
            client,
            cfg,
            log,
            next_job: 1,
            master_factory,
            worker_factory,
        }
    }

    // ------------------------------------------------------------------
    // Jobs
    // ------------------------------------------------------------------

    /// Submits a job description; returns its id.
    pub fn submit(&mut self, desc: &JobDesc, opts: &SubmitOpts) -> JobId {
        let job = JobId(self.next_job);
        self.next_job += 1;
        let app_desc = AppDescription {
            app_type: "fuxi_job".to_owned(),
            quota_group: opts.quota_group,
            priority: opts.priority,
            master_resource: fuxi_proto::ResourceVec::cores_mb(1, 2048),
            master_package_mb: opts.master_package_mb,
            payload: desc.to_json(),
        };
        // The causal trace opens here: everything downstream of this
        // submission inherits `TraceId::from_job(job)` via the kernel's
        // delivery envelopes.
        self.world.send_external_traced(
            self.client,
            Msg::SubmitJob {
                job,
                desc: app_desc,
                client: self.client,
            },
            TraceId::from_job(job.0),
        );
        job
    }

    /// Job state.
    pub fn job_state(&self, job: JobId) -> Option<JobState> {
        self.log.lock().unwrap().get(&job).cloned()
    }

    /// `Some((success, finish_time_s))` once the job reached a terminal
    /// state.
    pub fn job_done(&self, job: JobId) -> Option<(bool, f64)> {
        self.log
            .lock()
            .unwrap()
            .get(&job)
            .and_then(|st| st.done.as_ref().map(|&(ok, t, _)| (ok, t)))
    }

    /// Finished count.
    pub fn finished_count(&self) -> usize {
        self.log.lock().unwrap().values().filter(|s| s.done.is_some()).count()
    }

    /// All jobs.
    pub fn all_jobs(&self) -> Vec<(JobId, JobState)> {
        self.log
            .lock()
            .unwrap()
            .iter()
            .map(|(&j, s)| (j, s.clone()))
            .collect()
    }

    // ------------------------------------------------------------------
    // Running
    // ------------------------------------------------------------------

    /// Run until.
    pub fn run_until(&mut self, t: SimTime) {
        self.world.run_until(t);
    }

    /// Run for.
    pub fn run_for(&mut self, d: SimDuration) {
        self.world.run_for(d);
    }

    /// Runs until the job finishes or the deadline passes.
    pub fn run_until_job_done(&mut self, job: JobId, deadline: SimTime) -> Option<(bool, f64)> {
        let log = self.log.clone();
        self.world.run_until_cond(deadline, move |_| {
            log.lock()
            .unwrap()
                .get(&job)
                .map(|s| s.done.is_some())
                .unwrap_or(false)
        });
        self.job_done(job)
    }

    /// Runs until a metrics counter reaches `n` or the deadline passes.
    pub fn run_until_counter(&mut self, name: &'static str, n: u64, deadline: SimTime) -> u64 {
        self.world
            .run_until_cond(deadline, move |w| w.metrics().counter(name) >= n);
        self.world.metrics().counter(name)
    }

    /// Runs until `n` jobs have finished or the deadline passes; returns
    /// how many finished.
    pub fn run_until_n_done(&mut self, n: usize, deadline: SimTime) -> usize {
        let log = self.log.clone();
        self.world.run_until_cond(deadline, move |_| {
            log.lock().unwrap().values().filter(|s| s.done.is_some()).count() >= n
        });
        self.finished_count()
    }

    // ------------------------------------------------------------------
    // Failover & fault controls
    // ------------------------------------------------------------------

    /// The actor currently holding the master role.
    pub fn current_master(&self) -> Option<ActorId> {
        self.naming.master()
    }

    /// Kills the current primary FuxiMaster (the paper's
    /// FuxiMasterFailure fault).
    pub fn kill_primary_master(&mut self) {
        if let Some(fm) = self.naming.master() {
            self.world.kill_actor(fm);
        }
    }

    /// Spawns a fresh standby master (e.g. to replace a killed primary).
    pub fn spawn_standby_master(&mut self) -> ActorId {
        let m = self.world.spawn(
            None,
            Box::new(FuxiMaster::new(
                self.cfg.master.clone(),
                (*self.topo).clone(),
                self.naming.clone(),
                self.store.clone(),
                self.lock,
                self.hub.clone(),
            )),
        );
        self.masters.push(m);
        m
    }

    /// Kills only the agent process on `m` (workers survive — the agent
    /// failover scenario). Returns the old agent actor.
    pub fn kill_agent(&mut self, m: MachineId) -> ActorId {
        let old = self.agents[m.0 as usize];
        self.world.kill_actor(old);
        old
    }

    /// Starts a new agent on `m` (it adopts surviving processes).
    pub fn respawn_agent(&mut self, m: MachineId) -> ActorId {
        let a = self.world.spawn(
            Some(m.0),
            Box::new(FuxiAgent::new(
                m,
                self.topo.spec(m).resources.clone(),
                self.cfg.agent.clone(),
                self.naming.clone(),
                self.master_factory.clone(),
                self.worker_factory.clone(),
            )),
        );
        self.agents[m.0 as usize] = a;
        a
    }

    /// Machine the current JobMaster of `job` runs on, located via the
    /// machines' process tables (test helper).
    pub fn find_jobmaster(&self, job: JobId) -> Option<(MachineId, ActorId)> {
        for m in self.topo.machines() {
            if !self.world.machine_up(m.0) {
                continue;
            }
            for (actor, meta) in self.world.procs_on(m.0) {
                if let Some(fuxi_agent::ProcMeta::JobMaster { job: j, .. }) =
                    fuxi_agent::ProcMeta::decode(&meta)
                {
                    if j == job {
                        return Some((m, actor));
                    }
                }
            }
        }
        None
    }

    /// Worker actors of `job`'s app currently alive on `m` (test helper).
    pub fn workers_on(&self, m: MachineId) -> Vec<ActorId> {
        self.world
            .procs_on(m.0)
            .into_iter()
            .filter(|(_, meta)| {
                matches!(
                    fuxi_agent::ProcMeta::decode(meta),
                    Some(fuxi_agent::ProcMeta::Worker { .. })
                )
            })
            .map(|(a, _)| a)
            .collect()
    }
}
