#![warn(missing_docs)]
//! # fuxi-core — FuxiMaster
//!
//! The paper's central contribution: the FuxiMaster resource scheduler.
//!
//! * [`scheduler`] — the incremental, locality-tree-based scheduling engine
//!   (paper Section 3): free-resource pool, machine/rack/cluster waiting
//!   queues, multi-unit grants, preemption.
//! * [`quota`] — quota groups and multi-tenancy accounting (Section 3.4).
//! * [`blacklist`] — cluster-level faulty-node detection: heartbeat
//!   timeouts, pluggable health scoring, cross-job bad-machine aggregation
//!   (Section 4.3.2).
//! * [`state`] — hard/soft state separation and the checkpoint format
//!   (Section 4.3.1, Figure 7).
//! * [`master`] — the FuxiMaster actor: the wire protocol, prioritized
//!   request handling (urgent vs. batched vs. roll-up), hot-standby
//!   election via the Apsara lock, and failover state reconstruction.
//!
//! The [`scheduler::Engine`] is deliberately a plain synchronous data
//! structure with no simulator dependencies on its hot path: benchmarks time
//! exactly the code the simulated master runs (Figure 9's sub-millisecond
//! claim is measured, not modelled).

pub mod blacklist;
pub mod master;
pub mod quota;
pub mod scheduler;
pub mod state;

pub use blacklist::{ClusterBlacklist, BlacklistConfig, HealthPlugin};
pub use master::{FuxiMaster, MasterConfig};
pub use quota::{QuotaGroup, QuotaManager};
pub use scheduler::{Engine, EngineConfig, EngineEvent, RevokeReason};
pub use state::HardState;
