//! The deployment transport: versioned, framed, supervised links between
//! `fuxi-node` processes.
//!
//! Every frame carries the [`fuxi_proto::wire`] header — magic `"FUXI"`,
//! `u16` protocol version, `u16` frame type, `u32` payload length — and
//! connections open with a HELLO handshake: the dialing side sends a
//! [`Hello`] (its node identity, actor-id base and session epoch), the
//! accepting side answers [`HelloAck`] (its replicated name/store
//! snapshot) or a `HelloReject` frame with a raw UTF-8 reason. A version
//! mismatch is a typed [`WireError::VersionMismatch`] /
//! [`WireError::Rejected`] on the two sides — never a decode panic.
//!
//! The [`Transport`] trait abstracts the byte pipe so the in-process
//! channel pair ([`ChannelTransport::pair`]) and real TCP
//! ([`TcpTransport`]) run the *same* framing and handshake code: what the
//! unit tests exercise in-proc is byte-for-byte what crosses machines.
//!
//! Failure semantics (what supervision keys on):
//! * EOF exactly at a frame boundary, or a `Bye` frame → orderly close
//!   (`Ok(None)` from [`Transport::recv`]);
//! * EOF mid-header or mid-payload, resets, I/O errors →
//!   [`WireError::ConnectionLost`];
//! * an unknown frame type is *skipped* (counted, payload consumed) so a
//!   newer peer can add frame kinds without breaking us.

use fuxi_proto::wire::{
    self, FrameType, Hello, HelloAck, WireError, HEADER_LEN, MAX_FRAME, PROTO_VERSION,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};

/// One decoded frame as delivered by [`Transport::recv`].
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the payload is.
    pub frame_type: FrameType,
    /// Raw payload bytes (decode with [`fuxi_proto::wire::decode_payload`]).
    pub payload: Vec<u8>,
}

/// A connected, handshaken, framed byte pipe. Object-safe so supervisors
/// hold `Box<dyn Transport>` regardless of the medium.
pub trait Transport: Send {
    /// Sends one frame (header + payload).
    fn send(&mut self, frame_type: FrameType, payload: &[u8]) -> Result<(), WireError>;

    /// Blocks for the next frame. `Ok(None)` on orderly close (clean EOF
    /// or `Bye`); unknown frame types are skipped and counted.
    fn recv(&mut self) -> Result<Option<Frame>, WireError>;

    /// Frames skipped because their type was unknown to this build.
    fn skipped_frames(&self) -> u64;

    /// Human-readable peer description for diagnostics.
    fn peer(&self) -> String;

    /// An independent handle onto the same link (so one thread can block
    /// in `recv` while others `send`).
    fn try_clone_box(&self) -> Result<Box<dyn Transport>, WireError>;
}

fn lost(e: impl std::fmt::Display) -> WireError {
    WireError::ConnectionLost(e.to_string())
}

// ---------------------------------------------------------------------
// Shared framing over any Read/Write
// ---------------------------------------------------------------------

fn write_frame(w: &mut impl Write, version: u16, frame_type: u16, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > MAX_FRAME as u64 {
        return Err(WireError::FrameTooLarge(payload.len() as u32));
    }
    let frame = wire::encode_frame(version, frame_type, payload);
    w.write_all(&frame).map_err(lost)?;
    w.flush().map_err(lost)
}

/// Reads one frame. `Ok(None)` on EOF at a frame boundary; EOF anywhere
/// *inside* a frame is [`WireError::ConnectionLost`] — the length prefix
/// is only trusted as far as the bytes actually arrive.
fn read_frame(r: &mut impl Read, expect_version: u16) -> Result<Option<(u16, Vec<u8>)>, WireError> {
    let mut hdr = [0u8; HEADER_LEN];
    // Hand-rolled read_exact so EOF-at-boundary and EOF-mid-header are
    // distinguishable.
    let mut got = 0;
    while got < HEADER_LEN {
        match r.read(&mut hdr[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::ConnectionLost(format!(
                    "EOF after {got} header bytes"
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(lost(e)),
        }
    }
    let header = wire::parse_header(&hdr)?;
    if header.version != expect_version {
        return Err(WireError::VersionMismatch { ours: expect_version, theirs: header.version });
    }
    let mut payload = vec![0u8; header.len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => {
                return Err(WireError::ConnectionLost(format!(
                    "EOF mid-frame: {got}/{} payload bytes",
                    payload.len()
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(lost(e)),
        }
    }
    Ok(Some((header.frame_type, payload)))
}

// ---------------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------------

/// [`Transport`] over a real TCP socket, post-handshake.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    peer: String,
    skipped: Arc<AtomicU64>,
}

impl TcpTransport {
    /// Dials `addr`, runs the client half of the HELLO handshake, and
    /// returns the connected transport plus the hub's [`HelloAck`].
    pub fn connect(addr: impl ToSocketAddrs, hello: &Hello) -> Result<(TcpTransport, HelloAck), WireError> {
        Self::connect_with_version(addr, hello, PROTO_VERSION)
    }

    /// [`TcpTransport::connect`] with an explicit version stamped on the
    /// HELLO frame — how tests (and future downgrade logic) exercise the
    /// negotiation path.
    pub fn connect_with_version(
        addr: impl ToSocketAddrs,
        hello: &Hello,
        version: u16,
    ) -> Result<(TcpTransport, HelloAck), WireError> {
        let stream = TcpStream::connect(addr).map_err(lost)?;
        stream.set_nodelay(true).ok();
        let peer = stream
            .peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "<unknown>".into());
        let mut t = TcpTransport { stream, peer, skipped: Arc::new(AtomicU64::new(0)) };
        // The HELLO payload is always encoded at our build's version; the
        // *frame header* carries the claimed version under negotiation.
        let payload = wire::encode_payload(PROTO_VERSION, hello)?;
        write_frame(&mut t.stream, version, FrameType::Hello as u16, &payload)?;
        // The reply may legitimately arrive stamped with the server's own
        // version (a reject from a different build), so read it leniently.
        let mut hdr = [0u8; HEADER_LEN];
        t.stream.read_exact(&mut hdr).map_err(lost)?;
        let header = wire::parse_header(&hdr)?;
        let mut payload = vec![0u8; header.len as usize];
        t.stream.read_exact(&mut payload).map_err(lost)?;
        match FrameType::from_u16(header.frame_type) {
            Some(FrameType::HelloAck) => {
                let ack = wire::decode_payload::<HelloAck>(header.version, &payload)?;
                Ok((t, ack))
            }
            Some(FrameType::HelloReject) => Err(WireError::Rejected {
                peer_version: header.version,
                reason: String::from_utf8_lossy(&payload).into_owned(),
            }),
            other => Err(WireError::Malformed(format!(
                "expected HelloAck/HelloReject, got {other:?}"
            ))),
        }
    }

    /// Raw stream accessor (the node supervisor sets read timeouts on it).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, frame_type: FrameType, payload: &[u8]) -> Result<(), WireError> {
        write_frame(&mut self.stream, PROTO_VERSION, frame_type as u16, payload)
    }

    fn recv(&mut self) -> Result<Option<Frame>, WireError> {
        loop {
            match read_frame(&mut self.stream, PROTO_VERSION)? {
                None => return Ok(None),
                Some((raw_type, payload)) => match FrameType::from_u16(raw_type) {
                    Some(FrameType::Bye) => return Ok(None),
                    Some(frame_type) => return Ok(Some(Frame { frame_type, payload })),
                    None => {
                        self.skipped.fetch_add(1, Ordering::Relaxed);
                    }
                },
            }
        }
    }

    fn skipped_frames(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    fn peer(&self) -> String {
        self.peer.clone()
    }

    fn try_clone_box(&self) -> Result<Box<dyn Transport>, WireError> {
        Ok(Box::new(TcpTransport {
            stream: self.stream.try_clone().map_err(lost)?,
            peer: self.peer.clone(),
            skipped: Arc::clone(&self.skipped),
        }))
    }
}

/// Accepting side of the transport: binds, accepts, handshakes.
pub struct TransportListener {
    listener: TcpListener,
    addr: SocketAddr,
}

/// Decision taken by the accept callback for one incoming [`Hello`].
pub type AcceptDecision = Result<HelloAck, String>;

impl TransportListener {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> Result<TransportListener, WireError> {
        let listener = TcpListener::bind(addr).map_err(lost)?;
        let addr = listener.local_addr().map_err(lost)?;
        Ok(TransportListener { listener, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts one connection and runs the server half of the handshake.
    ///
    /// A peer whose HELLO header claims a version other than
    /// [`PROTO_VERSION`] is answered with a `HelloReject` frame (stamped
    /// with *our* version, raw UTF-8 reason) and surfaces here as
    /// [`WireError::VersionMismatch`]. Otherwise `accept` decides: `Ok`
    /// sends the ack and yields the transport, `Err(reason)` rejects.
    pub fn accept_handshake(
        &self,
        accept: impl FnOnce(&Hello) -> AcceptDecision,
    ) -> Result<(TcpTransport, Hello), WireError> {
        let (mut stream, peer_addr) = self.listener.accept().map_err(lost)?;
        stream.set_nodelay(true).ok();
        let mut hdr = [0u8; HEADER_LEN];
        stream.read_exact(&mut hdr).map_err(lost)?;
        let header = wire::parse_header(&hdr)?;
        let mut payload = vec![0u8; header.len as usize];
        stream.read_exact(&mut payload).map_err(lost)?;
        if header.version != PROTO_VERSION {
            let reason = format!(
                "protocol version mismatch: this node speaks v{PROTO_VERSION}, you sent v{}",
                header.version
            );
            let _ = write_frame(
                &mut stream,
                PROTO_VERSION,
                FrameType::HelloReject as u16,
                reason.as_bytes(),
            );
            return Err(WireError::VersionMismatch { ours: PROTO_VERSION, theirs: header.version });
        }
        if FrameType::from_u16(header.frame_type) != Some(FrameType::Hello) {
            return Err(WireError::Malformed(format!(
                "expected Hello frame, got type {}",
                header.frame_type
            )));
        }
        let hello = wire::decode_payload::<Hello>(header.version, &payload)?;
        match accept(&hello) {
            Ok(ack) => {
                let bytes = wire::encode_payload(PROTO_VERSION, &ack)?;
                write_frame(&mut stream, PROTO_VERSION, FrameType::HelloAck as u16, &bytes)?;
                Ok((
                    TcpTransport {
                        stream,
                        peer: format!("{} ({})", hello.node, peer_addr),
                        skipped: Arc::new(AtomicU64::new(0)),
                    },
                    hello,
                ))
            }
            Err(reason) => {
                let _ = write_frame(
                    &mut stream,
                    PROTO_VERSION,
                    FrameType::HelloReject as u16,
                    reason.as_bytes(),
                );
                Err(WireError::Rejected { peer_version: header.version, reason })
            }
        }
    }
}

// ---------------------------------------------------------------------
// In-process channel transport
// ---------------------------------------------------------------------

/// [`Transport`] over in-process channels. Frames still round-trip the
/// full header encode/parse path, so the in-proc and TCP dialects cannot
/// drift: a framing bug fails the cheap unit test before it fails a
/// three-process deployment.
pub struct ChannelTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: Arc<Mutex<mpsc::Receiver<Vec<u8>>>>,
    name: String,
    skipped: Arc<AtomicU64>,
}

impl ChannelTransport {
    /// A connected pair of endpoints (no handshake: both halves are this
    /// build by construction).
    pub fn pair() -> (ChannelTransport, ChannelTransport) {
        let (atx, arx) = mpsc::channel();
        let (btx, brx) = mpsc::channel();
        (
            ChannelTransport {
                tx: atx,
                rx: Arc::new(Mutex::new(brx)),
                name: "chan:a".into(),
                skipped: Arc::new(AtomicU64::new(0)),
            },
            ChannelTransport {
                tx: btx,
                rx: Arc::new(Mutex::new(arx)),
                name: "chan:b".into(),
                skipped: Arc::new(AtomicU64::new(0)),
            },
        )
    }
}

impl Transport for ChannelTransport {
    fn send(&mut self, frame_type: FrameType, payload: &[u8]) -> Result<(), WireError> {
        if payload.len() as u64 > MAX_FRAME as u64 {
            return Err(WireError::FrameTooLarge(payload.len() as u32));
        }
        let frame = wire::encode_frame(PROTO_VERSION, frame_type as u16, payload);
        self.tx
            .send(frame)
            .map_err(|_| WireError::ConnectionLost("channel peer dropped".into()))
    }

    fn recv(&mut self) -> Result<Option<Frame>, WireError> {
        loop {
            let bytes = match self.rx.lock().unwrap().recv() {
                Ok(b) => b,
                Err(_) => return Ok(None), // sender dropped = orderly close
            };
            // Same header path as TCP: parse, version-check, type-dispatch.
            let mut cursor = &bytes[..];
            match read_frame(&mut cursor, PROTO_VERSION)? {
                None => return Ok(None),
                Some((raw_type, payload)) => match FrameType::from_u16(raw_type) {
                    Some(FrameType::Bye) => return Ok(None),
                    Some(frame_type) => return Ok(Some(Frame { frame_type, payload })),
                    None => {
                        self.skipped.fetch_add(1, Ordering::Relaxed);
                    }
                },
            }
        }
    }

    fn skipped_frames(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    fn peer(&self) -> String {
        self.name.clone()
    }

    fn try_clone_box(&self) -> Result<Box<dyn Transport>, WireError> {
        Ok(Box::new(ChannelTransport {
            tx: self.tx.clone(),
            rx: Arc::clone(&self.rx),
            name: self.name.clone(),
            skipped: Arc::clone(&self.skipped),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuxi_proto::wire::RoutedMsg;
    use fuxi_proto::Msg;
    use fuxi_sim::ActorId;

    fn hello(name: &str, index: u32) -> Hello {
        Hello {
            node: name.into(),
            node_index: index,
            actor_base: index << 24,
            session_epoch: 1,
        }
    }

    fn ack() -> HelloAck {
        HelloAck { node: "hub".into(), names: vec![], store: vec![] }
    }

    fn exchange(mut a: Box<dyn Transport>, mut b: Box<dyn Transport>) {
        let msg = RoutedMsg {
            from: ActorId(3),
            to: ActorId(1 << 24 | 7),
            msg: Msg::StopJob { job: fuxi_proto::JobId(9) },
        };
        let bytes = wire::encode_payload(PROTO_VERSION, &msg).unwrap();
        a.send(FrameType::Msg, &bytes).unwrap();
        let frame = b.recv().unwrap().unwrap();
        assert_eq!(frame.frame_type, FrameType::Msg);
        let back: RoutedMsg = wire::decode_payload(PROTO_VERSION, &frame.payload).unwrap();
        assert_eq!(back.to, ActorId(1 << 24 | 7));
        assert!(matches!(back.msg, Msg::StopJob { .. }));
    }

    #[test]
    fn tcp_handshake_and_typed_exchange() {
        let listener = TransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let (t, h) = listener.accept_handshake(|_h| Ok(ack())).unwrap();
            assert_eq!(h.node, "agents");
            assert_eq!(h.actor_base, 2 << 24);
            t
        });
        let (client, got_ack) = TcpTransport::connect(addr, &hello("agents", 2)).unwrap();
        assert_eq!(got_ack.node, "hub");
        let server_t = server.join().unwrap();
        exchange(Box::new(client), Box::new(server_t));
    }

    #[test]
    fn channel_pair_speaks_the_same_dialect() {
        let (a, b) = ChannelTransport::pair();
        exchange(Box::new(a), Box::new(b));
    }

    #[test]
    fn version_mismatch_is_typed_rejection_on_both_sides() {
        let listener = TransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || listener.accept_handshake(|_h| Ok(ack())));
        let err = TcpTransport::connect_with_version(addr, &hello("old-peer", 1), PROTO_VERSION + 1)
            .unwrap_err();
        match err {
            WireError::Rejected { peer_version, reason } => {
                assert_eq!(peer_version, PROTO_VERSION);
                assert!(reason.contains("version mismatch"), "{reason}");
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
        match server.join().unwrap().unwrap_err() {
            WireError::VersionMismatch { ours, theirs } => {
                assert_eq!(ours, PROTO_VERSION);
                assert_eq!(theirs, PROTO_VERSION + 1);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
    }

    #[test]
    fn accept_callback_can_refuse() {
        let listener = TransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server =
            std::thread::spawn(move || listener.accept_handshake(|_h| Err("no capacity".into())));
        let err = TcpTransport::connect(addr, &hello("x", 1)).unwrap_err();
        assert_eq!(
            err,
            WireError::Rejected { peer_version: PROTO_VERSION, reason: "no capacity".into() }
        );
        assert!(matches!(server.join().unwrap(), Err(WireError::Rejected { .. })));
    }

    #[test]
    fn truncated_stream_mid_frame_is_connection_lost() {
        // A header promising 100 bytes followed by only 10: the reader must
        // surface ConnectionLost, not block or return a partial frame.
        let mut bytes = wire::encode_frame(PROTO_VERSION, FrameType::Msg as u16, &[0u8; 100]);
        bytes.truncate(HEADER_LEN + 10);
        let mut r = &bytes[..];
        match read_frame(&mut r, PROTO_VERSION) {
            Err(WireError::ConnectionLost(why)) => assert!(why.contains("mid-frame"), "{why}"),
            other => panic!("expected ConnectionLost, got {other:?}"),
        }
        // EOF mid-header is also a loss, not a clean close…
        let mut r = &bytes[..HEADER_LEN - 5];
        assert!(matches!(
            read_frame(&mut r, PROTO_VERSION),
            Err(WireError::ConnectionLost(_))
        ));
        // …while EOF at an exact frame boundary is.
        let whole = wire::encode_frame(PROTO_VERSION, FrameType::Msg as u16, b"ok");
        let mut r = &whole[..];
        assert!(read_frame(&mut r, PROTO_VERSION).unwrap().is_some());
        assert!(read_frame(&mut r, PROTO_VERSION).unwrap().is_none());
    }

    #[test]
    fn tcp_peer_death_mid_frame_surfaces_connection_lost() {
        let listener = TransportListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr();
        let server = std::thread::spawn(move || {
            let (mut t, _) = listener.accept_handshake(|_| Ok(ack())).unwrap();
            t.recv()
        });
        let (client, _) = TcpTransport::connect(addr, &hello("dying", 1)).unwrap();
        // Write half a frame, then kill the socket.
        let mut s = client.stream().try_clone().unwrap();
        let partial = wire::encode_frame(PROTO_VERSION, FrameType::Msg as u16, &[7u8; 64]);
        s.write_all(&partial[..HEADER_LEN + 8]).unwrap();
        drop(s);
        drop(client);
        match server.join().unwrap() {
            Err(WireError::ConnectionLost(_)) => {}
            other => panic!("expected ConnectionLost, got {other:?}"),
        }
    }

    #[test]
    fn unknown_frame_types_are_skipped_not_fatal() {
        let (mut a, mut b) = ChannelTransport::pair();
        // A future peer sends two frame kinds we do not know, then a real one.
        let future = wire::encode_frame(PROTO_VERSION, 998, b"from-the-future");
        a.tx.send(future).unwrap();
        let future2 = wire::encode_frame(PROTO_VERSION, 999, b"");
        a.tx.send(future2).unwrap();
        a.send(FrameType::NameUpdate, b"").unwrap();
        let frame = b.recv().unwrap().unwrap();
        assert_eq!(frame.frame_type, FrameType::NameUpdate);
        assert_eq!(b.skipped_frames(), 2);
    }

    #[test]
    fn bye_frame_closes_cleanly() {
        let (mut a, mut b) = ChannelTransport::pair();
        a.send(FrameType::Bye, &[]).unwrap();
        assert_eq!(b.recv().unwrap(), None);
    }

    #[test]
    fn oversized_frame_refused_at_send() {
        let (mut a, _b) = ChannelTransport::pair();
        let huge = vec![0u8; MAX_FRAME as usize + 1];
        assert!(matches!(
            a.send(FrameType::Msg, &huge),
            Err(WireError::FrameTooLarge(_))
        ));
    }
}
