//! Connection supervision for the star overlay.
//!
//! One process is the **hub** (it hosts the lock service in the standard
//! layout, so it is the natural rendezvous); every other node is a
//! **leaf** that dials the hub. The supervisor owns all sockets and
//! threads; actor code never sees a connection, only `ActorId`s.
//!
//! Responsibilities:
//!
//! * **Routing** — a leaf sends every non-local message to the hub; the
//!   hub delivers window-0 destinations locally and relays the rest to
//!   the owning peer. Messages for unreachable peers are dropped (actor
//!   protocols already tolerate loss: heartbeats repeat, submissions
//!   retry, the request/grant channels detect gaps and full-sync).
//! * **Replication** — local name-service and checkpoint-store mutations
//!   are broadcast (`NameUpdate`/`StorePut` frames); the hub applies and
//!   rebroadcasts to every other peer, so each process converges on the
//!   same replica. Replicated applies never re-fire the watcher, so
//!   updates cannot echo.
//! * **Supervision** — a leaf reconnects with jittered exponential
//!   backoff and a bumped `session_epoch`; the HELLO-ACK carries full
//!   name/store snapshots so a reconnecting node re-syncs state it
//!   missed. Peer liveness (`connection up`) feeds `ctx.alive`, which is
//!   what lets the lease lock expire a SIGKILLed master's lease and pass
//!   the lock to the standby.

use fuxi_apsara::{NameRegistry, StoreHandle};
use fuxi_proto::wire::{self, Hello, HelloAck, NameUpdate, RoutedMsg, StoreUpdate};
use fuxi_proto::{FrameType, Msg, PROTO_VERSION};
use fuxi_rt::{Frame, TcpTransport, Transport, TransportListener};
use fuxi_sim::ActorId;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Inbound delivery into the local runtime (`LiveRuntime::remote_injector`).
pub type Inject = Arc<dyn Fn(ActorId, ActorId, Msg) + Send + Sync>;

type OutFrame = (FrameType, Vec<u8>);

fn encode<T: serde::Serialize>(payload: &T) -> Vec<u8> {
    wire::encode_payload(PROTO_VERSION, payload).expect("wire encode")
}

/// Jittered exponential backoff: `base * 2^attempt`, capped at `max`,
/// then scaled by a pseudo-random factor in `[0.5, 1.5)`. The jitter
/// source is a tiny splitmix over (seed, attempt) — deterministic enough
/// to test, spread enough to avoid thundering-herd redials.
pub fn backoff_delay(base: Duration, max: Duration, attempt: u32, seed: u64) -> Duration {
    let exp = base.saturating_mul(1u32 << attempt.min(6));
    let capped = exp.min(max);
    let mut z = seed
        .wrapping_add(u64::from(attempt))
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    let frac = ((z >> 40) as f64) / ((1u64 << 24) as f64); // [0,1)
    capped.mul_f64(0.5 + frac)
}

// ---------------------------------------------------------------------
// Hub
// ---------------------------------------------------------------------

struct PeerLink {
    epoch: u64,
    up: Arc<AtomicBool>,
    tx: mpsc::Sender<OutFrame>,
}

struct HubInner {
    node: String,
    naming: NameRegistry,
    store: StoreHandle,
    inject: Inject,
    peers: Mutex<BTreeMap<u32, PeerLink>>,
    relayed: AtomicU64,
    dropped: AtomicU64,
    accepted: AtomicU64,
}

impl HubInner {
    fn send_to(&self, node_index: u32, ft: FrameType, payload: Vec<u8>) {
        let peers = self.peers.lock().unwrap();
        match peers.get(&node_index) {
            Some(p) if p.up.load(Ordering::Acquire) => {
                if p.tx.send((ft, payload)).is_err() {
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                }
            }
            _ => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn broadcast_except(&self, skip: Option<u32>, ft: FrameType, payload: &[u8]) {
        let peers = self.peers.lock().unwrap();
        for (&idx, p) in peers.iter() {
            if Some(idx) == skip || !p.up.load(Ordering::Acquire) {
                continue;
            }
            let _ = p.tx.send((ft, payload.to_vec()));
        }
    }

    fn dispatch(&self, src: u32, frame: Frame) {
        match frame.frame_type {
            FrameType::Msg => {
                let Ok(routed) =
                    wire::decode_payload::<RoutedMsg>(PROTO_VERSION, &frame.payload)
                else {
                    return;
                };
                if routed.to.node_index() == 0 {
                    (self.inject)(routed.from, routed.to, routed.msg);
                } else {
                    // Relay the raw payload unchanged — no re-encode.
                    self.relayed.fetch_add(1, Ordering::Relaxed);
                    self.send_to(routed.to.node_index(), FrameType::Msg, frame.payload);
                }
            }
            FrameType::NameUpdate => {
                if let Ok(u) = wire::decode_payload::<NameUpdate>(PROTO_VERSION, &frame.payload)
                {
                    self.naming.apply_remote(&u.name, u.id);
                    self.broadcast_except(Some(src), FrameType::NameUpdate, &frame.payload);
                }
            }
            FrameType::StorePut => {
                if let Ok(u) = wire::decode_payload::<StoreUpdate>(PROTO_VERSION, &frame.payload)
                {
                    self.store.apply_remote(&u.key, u.value);
                    self.broadcast_except(Some(src), FrameType::StorePut, &frame.payload);
                }
            }
            _ => {}
        }
    }

    fn register_peer(self: &Arc<Self>, hello: Hello, transport: TcpTransport) {
        let up = Arc::new(AtomicBool::new(true));
        let (tx, rx) = mpsc::channel::<OutFrame>();
        {
            let mut peers = self.peers.lock().unwrap();
            if let Some(old) = peers.get(&hello.node_index) {
                if old.epoch >= hello.session_epoch {
                    // Stale duplicate dial; drop it (its threads never start).
                    return;
                }
                old.up.store(false, Ordering::Release);
            }
            peers.insert(
                hello.node_index,
                PeerLink {
                    epoch: hello.session_epoch,
                    up: Arc::clone(&up),
                    tx,
                },
            );
        }
        self.accepted.fetch_add(1, Ordering::Relaxed);

        // Writer: drains the peer's outbound queue onto the socket.
        let mut writer = transport.try_clone_box().expect("clone transport");
        let wup = Arc::clone(&up);
        std::thread::Builder::new()
            .name(format!("hub-tx-{}", hello.node))
            .spawn(move || {
                while let Ok((ft, payload)) = rx.recv() {
                    if writer.send(ft, &payload).is_err() {
                        wup.store(false, Ordering::Release);
                        break;
                    }
                }
            })
            .expect("spawn hub writer");

        // Reader: dispatches inbound frames until the connection dies.
        let inner = Arc::clone(self);
        let src = hello.node_index;
        let mut reader = transport;
        std::thread::Builder::new()
            .name(format!("hub-rx-{}", hello.node))
            .spawn(move || {
                while let Ok(Some(frame)) = reader.recv() {
                    inner.dispatch(src, frame);
                }
                up.store(false, Ordering::Release);
            })
            .expect("spawn hub reader");
    }
}

/// The hub half of the overlay: accepts peers, relays, rebroadcasts.
pub struct HubSupervisor {
    inner: Arc<HubInner>,
    addr: SocketAddr,
}

impl HubSupervisor {
    /// Binds `addr` and starts the accept loop. `inject` delivers frames
    /// addressed to this (window-0) process into its runtime.
    pub fn start(
        addr: &str,
        node: &str,
        naming: NameRegistry,
        store: StoreHandle,
        inject: Inject,
    ) -> Result<HubSupervisor, fuxi_proto::WireError> {
        let listener = TransportListener::bind(addr)?;
        let bound = listener.local_addr();
        let inner = Arc::new(HubInner {
            node: node.to_owned(),
            naming: naming.clone(),
            store: store.clone(),
            inject,
            peers: Mutex::new(BTreeMap::new()),
            relayed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
        });

        // Local mutations replicate to every peer.
        {
            let hub = Arc::clone(&inner);
            naming.set_watcher(Box::new(move |name, id| {
                let payload = encode(&NameUpdate {
                    name: name.to_owned(),
                    id,
                });
                hub.broadcast_except(None, FrameType::NameUpdate, &payload);
            }));
            let hub = Arc::clone(&inner);
            store.set_watcher(Box::new(move |key, value| {
                let payload = encode(&StoreUpdate {
                    key: key.to_owned(),
                    value: value.map(<[u8]>::to_vec),
                });
                hub.broadcast_except(None, FrameType::StorePut, &payload);
            }));
        }

        let accept_inner = Arc::clone(&inner);
        std::thread::Builder::new()
            .name("hub-accept".to_owned())
            .spawn(move || loop {
                let naming = accept_inner.naming.clone();
                let store = accept_inner.store.clone();
                let node = accept_inner.node.clone();
                match listener.accept_handshake(|_hello| {
                    Ok(HelloAck {
                        node,
                        names: naming.dump(),
                        store: store.dump(),
                    })
                }) {
                    Ok((transport, hello)) => accept_inner.register_peer(hello, transport),
                    // Version mismatches and handshake garbage are already
                    // answered with HELLO-REJECT inside accept_handshake;
                    // just keep accepting.
                    Err(_) => continue,
                }
            })
            .expect("spawn hub accept loop");

        Ok(HubSupervisor { inner, addr: bound })
    }

    /// The bound listen address (resolves `:0` to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Outbound router for the hub's runtime: window-`i` destinations go
    /// to peer `i`'s queue.
    pub fn router(&self) -> Box<dyn Fn(ActorId, ActorId, Msg) + Send + Sync> {
        let inner = Arc::clone(&self.inner);
        Box::new(move |from, to, msg| {
            let payload = encode(&RoutedMsg { from, to, msg });
            inner.send_to(to.node_index(), FrameType::Msg, payload);
        })
    }

    /// Liveness oracle: a remote actor is alive while its node's
    /// connection is up. This is the failure detector the lease lock
    /// leans on after a SIGKILL.
    pub fn remote_alive(&self) -> Box<dyn Fn(ActorId) -> bool + Send + Sync> {
        let inner = Arc::clone(&self.inner);
        Box::new(move |id| {
            let peers = inner.peers.lock().unwrap();
            peers
                .get(&id.node_index())
                .is_some_and(|p| p.up.load(Ordering::Acquire))
        })
    }

    /// `true` while node `i`'s connection is up.
    pub fn peer_up(&self, node_index: u32) -> bool {
        let peers = self.inner.peers.lock().unwrap();
        peers
            .get(&node_index)
            .is_some_and(|p| p.up.load(Ordering::Acquire))
    }

    /// Blocks until peers `1..=n` are all connected or `timeout` passes.
    pub fn wait_peers(&self, n: u32, timeout: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if (1..=n).all(|i| self.peer_up(i)) {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        false
    }

    /// (relayed, dropped, accepted) frame counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.inner.relayed.load(Ordering::Relaxed),
            self.inner.dropped.load(Ordering::Relaxed),
            self.inner.accepted.load(Ordering::Relaxed),
        )
    }
}

// ---------------------------------------------------------------------
// Leaf
// ---------------------------------------------------------------------

struct LeafInner {
    naming: NameRegistry,
    store: StoreHandle,
    inject: Inject,
    up: AtomicBool,
    epoch: AtomicU64,
    reconnects: AtomicU64,
    /// The live socket, for fault injection (`sever`).
    current: Mutex<Option<std::net::TcpStream>>,
}

impl LeafInner {
    fn dispatch(&self, frame: Frame) {
        match frame.frame_type {
            FrameType::Msg => {
                if let Ok(r) = wire::decode_payload::<RoutedMsg>(PROTO_VERSION, &frame.payload) {
                    (self.inject)(r.from, r.to, r.msg);
                }
            }
            FrameType::NameUpdate => {
                if let Ok(u) = wire::decode_payload::<NameUpdate>(PROTO_VERSION, &frame.payload) {
                    self.naming.apply_remote(&u.name, u.id);
                }
            }
            FrameType::StorePut => {
                if let Ok(u) = wire::decode_payload::<StoreUpdate>(PROTO_VERSION, &frame.payload) {
                    self.store.apply_remote(&u.key, u.value);
                }
            }
            _ => {}
        }
    }
}

/// Configuration for a leaf's dial/redial loop.
#[derive(Debug, Clone)]
pub struct LeafConfig {
    /// Node name for HELLO (diagnostics).
    pub node: String,
    /// This node's topology index (owns id window `index << 24`).
    pub node_index: u32,
    /// Initial redial delay.
    pub backoff_base: Duration,
    /// Redial delay cap.
    pub backoff_max: Duration,
    /// Exit the process when the hub stays unreachable this long
    /// (orphaned-child protection for the test driver); `None` retries
    /// forever.
    pub give_up_after: Option<Duration>,
}

impl LeafConfig {
    /// Defaults: 50 ms base, 2 s cap, never give up.
    pub fn new(node: &str, node_index: u32) -> Self {
        Self {
            node: node.to_owned(),
            node_index,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            give_up_after: None,
        }
    }
}

/// The leaf half: one supervised connection to the hub.
pub struct LeafSupervisor {
    inner: Arc<LeafInner>,
    out_tx: mpsc::Sender<OutFrame>,
}

impl LeafSupervisor {
    /// Starts the dial loop against `hub_addr`. Outbound frames queue
    /// while disconnected and drain after the next successful handshake,
    /// so brief hub outages lose nothing that was already queued.
    pub fn start(
        hub_addr: &str,
        cfg: LeafConfig,
        naming: NameRegistry,
        store: StoreHandle,
        inject: Inject,
    ) -> LeafSupervisor {
        let (out_tx, out_rx) = mpsc::channel::<OutFrame>();
        let inner = Arc::new(LeafInner {
            naming: naming.clone(),
            store: store.clone(),
            inject,
            up: AtomicBool::new(false),
            epoch: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            current: Mutex::new(None),
        });

        // Local mutations replicate up to the hub (which rebroadcasts).
        {
            let tx = out_tx.clone();
            naming.set_watcher(Box::new(move |name, id| {
                let payload = encode(&NameUpdate {
                    name: name.to_owned(),
                    id,
                });
                let _ = tx.send((FrameType::NameUpdate, payload));
            }));
            let tx = out_tx.clone();
            store.set_watcher(Box::new(move |key, value| {
                let payload = encode(&StoreUpdate {
                    key: key.to_owned(),
                    value: value.map(<[u8]>::to_vec),
                });
                let _ = tx.send((FrameType::StorePut, payload));
            }));
        }

        let loop_inner = Arc::clone(&inner);
        let hub_addr = hub_addr.to_owned();
        let actor_base = ActorId::node_base(cfg.node_index);
        std::thread::Builder::new()
            .name(format!("leaf-{}", cfg.node))
            .spawn(move || {
                let mut attempt = 0u32;
                let mut down_since = Instant::now();
                loop {
                    let epoch = loop_inner.epoch.fetch_add(1, Ordering::AcqRel) + 1;
                    let hello = Hello {
                        node: cfg.node.clone(),
                        node_index: cfg.node_index,
                        actor_base,
                        session_epoch: epoch,
                    };
                    let (mut transport, ack) = match TcpTransport::connect(&hub_addr, &hello) {
                        Ok(ok) => ok,
                        Err(_) => {
                            attempt += 1;
                            if let Some(limit) = cfg.give_up_after {
                                if down_since.elapsed() > limit {
                                    std::process::exit(3);
                                }
                            }
                            std::thread::sleep(backoff_delay(
                                cfg.backoff_base,
                                cfg.backoff_max,
                                attempt,
                                u64::from(cfg.node_index) << 32 | u64::from(attempt),
                            ));
                            continue;
                        }
                    };
                    attempt = 0;
                    if epoch > 1 {
                        loop_inner.reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    *loop_inner.current.lock().unwrap() = transport.stream().try_clone().ok();

                    // Re-sync: adopt the hub's snapshot, then re-announce
                    // our replica (idempotent; covers anything we wrote
                    // while the link was down and the queue had not yet
                    // captured, e.g. state from before the first connect).
                    for (name, id) in ack.names {
                        loop_inner.naming.apply_remote(&name, Some(id));
                    }
                    for (key, value) in ack.store {
                        loop_inner.store.apply_remote(&key, Some(value));
                    }
                    for (name, id) in loop_inner.naming.dump() {
                        let payload = encode(&NameUpdate {
                            name,
                            id: Some(id),
                        });
                        if transport.send(FrameType::NameUpdate, &payload).is_err() {
                            continue;
                        }
                    }
                    for (key, value) in loop_inner.store.dump() {
                        let payload = encode(&StoreUpdate {
                            key,
                            value: Some(value),
                        });
                        let _ = transport.send(FrameType::StorePut, &payload);
                    }
                    loop_inner.up.store(true, Ordering::Release);

                    // Reader on a clone; writer (this thread) drains the
                    // outbound queue until either side loses the socket.
                    let mut reader = match transport.try_clone_box() {
                        Ok(r) => r,
                        Err(_) => {
                            loop_inner.up.store(false, Ordering::Release);
                            continue;
                        }
                    };
                    let rd_inner = Arc::clone(&loop_inner);
                    let reader_thread = std::thread::Builder::new()
                        .name(format!("leaf-rx-{}", cfg.node))
                        .spawn(move || {
                            while let Ok(Some(frame)) = reader.recv() {
                                rd_inner.dispatch(frame);
                            }
                            rd_inner.up.store(false, Ordering::Release);
                        })
                        .expect("spawn leaf reader");

                    loop {
                        if !loop_inner.up.load(Ordering::Acquire) {
                            break;
                        }
                        match out_rx.recv_timeout(Duration::from_millis(50)) {
                            Ok((ft, payload)) => {
                                if transport.send(ft, &payload).is_err() {
                                    loop_inner.up.store(false, Ordering::Release);
                                    break;
                                }
                            }
                            Err(mpsc::RecvTimeoutError::Timeout) => continue,
                            Err(mpsc::RecvTimeoutError::Disconnected) => return,
                        }
                    }
                    drop(transport); // closes our half; unblocks the reader
                    let _ = reader_thread.join();
                    down_since = Instant::now();
                }
            })
            .expect("spawn leaf dial loop");

        LeafSupervisor { inner, out_tx }
    }

    /// Outbound router for this leaf's runtime: everything non-local goes
    /// through the hub.
    pub fn router(&self) -> Box<dyn Fn(ActorId, ActorId, Msg) + Send + Sync> {
        let tx = self.out_tx.clone();
        Box::new(move |from, to, msg| {
            let payload = encode(&RoutedMsg { from, to, msg });
            let _ = tx.send((FrameType::Msg, payload));
        })
    }

    /// Liveness oracle: any remote id is presumed alive while the hub
    /// link is up (the hub answers for its peers).
    pub fn remote_alive(&self) -> Box<dyn Fn(ActorId) -> bool + Send + Sync> {
        let inner = Arc::clone(&self.inner);
        Box::new(move |_id| inner.up.load(Ordering::Acquire))
    }

    /// `true` while the hub link is up.
    pub fn connected(&self) -> bool {
        self.inner.up.load(Ordering::Acquire)
    }

    /// Successful re-handshakes after the first (supervision metric).
    pub fn reconnects(&self) -> u64 {
        self.inner.reconnects.load(Ordering::Relaxed)
    }

    /// Fault injection: hard-closes the current socket (both directions),
    /// as if the peer was killed mid-heartbeat. The dial loop notices and
    /// reconnects with a bumped session epoch.
    pub fn sever(&self) {
        if let Some(s) = self.inner.current.lock().unwrap().take() {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
    }

    /// Blocks until the hub link is up or `timeout` passes.
    pub fn wait_connected(&self, timeout: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if self.connected() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        false
    }
}
