//! Criterion ablation: Fuxi's event-driven engine vs. the YARN-like
//! heartbeat scheduler and the Hadoop-1.0 slot JobTracker on the same
//! allocate/complete/release cycle.
//!
//! These measure *CPU cost per cycle*. YARN's per-cycle CPU is cheap — its
//! real cost is the **latency** of waiting for the next heartbeat and the
//! repeated full asks, which the end-to-end comparisons measure
//! (`table4_graysort`, `tests/scheduler_behavior.rs::container_reuse_*`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuxi_baseline::{Hadoop1Config, Hadoop1Scheduler, SlotKind, YarnConfig, YarnScheduler};
use fuxi_core::quota::QuotaManager;
use fuxi_core::scheduler::{Engine, EngineConfig};
use fuxi_proto::request::{RequestDelta, ScheduleUnitDef};
use fuxi_proto::topology::{MachineSpec, TopologyBuilder};
use fuxi_proto::{AppId, MachineId, Priority, QuotaGroupId, ResourceVec, UnitId};

const MACHINES: usize = 1000;

fn bench(c: &mut Criterion) {
    let unit = ResourceVec::new(500, 2048);

    c.bench_function("cycle_fuxi_engine", |b| {
        let topo = TopologyBuilder::new()
            .uniform(MACHINES / 50, 50, MachineSpec::default())
            .build();
        let mut e = Engine::new(topo, EngineConfig::default(), QuotaManager::new());
        e.attach_app(
            AppId(1),
            QuotaGroupId(0),
            vec![ScheduleUnitDef::new(UnitId(0), Priority(1000), unit.clone())],
        );
        e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 20_000)]);
        e.drain_events();
        b.iter(|| {
            // One task completes, its container is voluntarily returned,
            // the queue hands it straight to the next waiter — one event.
            if let Some((u, m, _, _)) = e.app_grants(AppId(1)).first().cloned() {
                e.return_grant(AppId(1), u, m, 1);
                e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 1)]);
            }
            black_box(e.drain_events());
        });
    });

    c.bench_function("cycle_yarn_heartbeat", |b| {
        let caps = vec![MachineSpec::default().resources; MACHINES];
        let mut y = YarnScheduler::new(YarnConfig::default(), caps);
        y.ask(0.0, AppId(1), unit.clone(), 20_000, None);
        for m in 0..MACHINES {
            y.node_heartbeat(0.0, MachineId(m as u32));
        }
        let mut i = 0u32;
        b.iter(|| {
            // One task completes: NM reclaims, AM re-asserts its ask, and
            // the grant waits for the node's next heartbeat scan.
            let m = MachineId(i % MACHINES as u32);
            i += 1;
            y.release(m, &unit);
            y.ask(i as f64, AppId(1), unit.clone(), 1, None);
            black_box(y.node_heartbeat(i as f64, m));
        });
    });

    c.bench_function("cycle_hadoop1_slots", |b| {
        let mut h = Hadoop1Scheduler::new(Hadoop1Config::default(), MACHINES);
        h.submit(AppId(1), SlotKind::Map, 20_000, unit.clone());
        for m in 0..MACHINES {
            h.tracker_heartbeat(MachineId(m as u32));
        }
        let mut i = 0u32;
        b.iter(|| {
            let m = MachineId(i % MACHINES as u32);
            i += 1;
            h.release(m, SlotKind::Map, &unit);
            h.submit(AppId(1), SlotKind::Map, 1, unit.clone());
            black_box(h.tracker_heartbeat(m));
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
