//! Quota groups: multi-tenancy accounting (paper Section 3.4).
//!
//! "One cluster can have multiple quota groups while each application must
//! belong to one and only one group. When applications from one quota group
//! are idle and cannot take up all resources, applications from other quota
//! groups can exploit it instead. When all quota groups are busy, a minimal
//! quota for each group will be ensured."
//!
//! Scheduling is therefore *work-conserving*: grants are never blocked by a
//! group being over its minimum — the minimum is enforced by preemption
//! when a deficit group cannot be satisfied from free resources. An
//! optional hard `max` cap is also supported.

use fuxi_proto::{QuotaGroupId, ResourceVec};
use std::collections::BTreeMap;

/// Configuration of one quota group.
#[derive(Debug, Clone, Default)]
pub struct QuotaGroup {
    /// Guaranteed minimum: when this group is busy and below it, other
    /// groups' excess usage may be preempted in its favour.
    pub min: ResourceVec,
    /// Optional hard ceiling on the group's total scheduled resources.
    pub max: Option<ResourceVec>,
}

/// Tracks per-group configured quotas and live usage.
#[derive(Debug, Default)]
pub struct QuotaManager {
    groups: BTreeMap<QuotaGroupId, QuotaGroup>,
    usage: BTreeMap<QuotaGroupId, ResourceVec>,
}

impl QuotaManager {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Defines (or redefines) a group.
    pub fn define(&mut self, id: QuotaGroupId, group: QuotaGroup) {
        self.groups.insert(id, group);
    }

    /// Group.
    pub fn group(&self, id: QuotaGroupId) -> Option<&QuotaGroup> {
        self.groups.get(&id)
    }

    /// Usage.
    pub fn usage(&self, id: QuotaGroupId) -> ResourceVec {
        self.usage.get(&id).cloned().unwrap_or(ResourceVec::ZERO)
    }

    /// Records `amount × count` granted to `id`.
    pub fn add_usage(&mut self, id: QuotaGroupId, amount: &ResourceVec, count: u64) {
        self.usage
            .entry(id)
            .or_default()
            .add_scaled(amount, count);
    }

    /// Records `amount × count` released by `id`.
    pub fn sub_usage(&mut self, id: QuotaGroupId, amount: &ResourceVec, count: u64) {
        if let Some(u) = self.usage.get_mut(&id) {
            u.sub_scaled(amount, count);
        }
    }

    /// `true` if granting `amount × count` more would stay under the
    /// group's `max` cap (always true for uncapped groups).
    pub fn within_max(&self, id: QuotaGroupId, amount: &ResourceVec, count: u64) -> bool {
        match self.groups.get(&id).and_then(|g| g.max.as_ref()) {
            None => true,
            Some(max) => {
                let mut would = self.usage(id);
                would.add_scaled(amount, count);
                would.fits_in(max)
            }
        }
    }

    /// `true` if the group's usage plus one more `amount` still fits within
    /// its guaranteed minimum — i.e. it is in *deficit* and entitled to
    /// preempt excess usage elsewhere.
    pub fn in_deficit_for(&self, id: QuotaGroupId, amount: &ResourceVec) -> bool {
        let Some(g) = self.groups.get(&id) else {
            return false;
        };
        let mut would = self.usage(id);
        would.add(amount);
        would.fits_in(&g.min)
    }

    /// `true` if the group uses more than its guaranteed minimum on some
    /// dimension — i.e. it holds *excess* that deficit groups may reclaim.
    pub fn over_min(&self, id: QuotaGroupId) -> bool {
        match self.groups.get(&id) {
            // Undefined groups have a zero minimum: any usage is excess.
            None => !self.usage(id).is_zero(),
            Some(g) => !self.usage(id).fits_in(&g.min),
        }
    }

    /// Groups.
    pub fn groups(&self) -> impl Iterator<Item = (QuotaGroupId, &QuotaGroup)> {
        self.groups.iter().map(|(&id, g)| (id, g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> QuotaManager {
        let mut m = QuotaManager::new();
        m.define(
            QuotaGroupId(1),
            QuotaGroup {
                min: ResourceVec::cores_mb(10, 10_000),
                max: None,
            },
        );
        m.define(
            QuotaGroupId(2),
            QuotaGroup {
                min: ResourceVec::cores_mb(5, 5_000),
                max: Some(ResourceVec::cores_mb(8, 8_000)),
            },
        );
        m
    }

    #[test]
    fn usage_accounting() {
        let mut m = mgr();
        let unit = ResourceVec::cores_mb(1, 1_000);
        m.add_usage(QuotaGroupId(1), &unit, 3);
        assert_eq!(m.usage(QuotaGroupId(1)), unit.scaled(3));
        m.sub_usage(QuotaGroupId(1), &unit, 2);
        assert_eq!(m.usage(QuotaGroupId(1)), unit.scaled(1));
        m.sub_usage(QuotaGroupId(1), &unit, 100);
        assert!(m.usage(QuotaGroupId(1)).is_zero(), "saturates at zero");
    }

    #[test]
    fn max_cap_blocks_only_capped_groups() {
        let mut m = mgr();
        let unit = ResourceVec::cores_mb(1, 1_000);
        assert!(m.within_max(QuotaGroupId(1), &unit, 1_000));
        assert!(m.within_max(QuotaGroupId(2), &unit, 8));
        assert!(!m.within_max(QuotaGroupId(2), &unit, 9));
        m.add_usage(QuotaGroupId(2), &unit, 8);
        assert!(!m.within_max(QuotaGroupId(2), &unit, 1));
    }

    #[test]
    fn deficit_and_excess() {
        let mut m = mgr();
        let unit = ResourceVec::cores_mb(1, 1_000);
        // Group 1 empty: granting one more keeps it within min -> deficit.
        assert!(m.in_deficit_for(QuotaGroupId(1), &unit));
        assert!(!m.over_min(QuotaGroupId(1)));
        // Fill group 1 beyond min.
        m.add_usage(QuotaGroupId(1), &unit, 11);
        assert!(!m.in_deficit_for(QuotaGroupId(1), &unit));
        assert!(m.over_min(QuotaGroupId(1)));
    }

    #[test]
    fn undefined_group_has_zero_min() {
        let mut m = mgr();
        let unit = ResourceVec::cores_mb(1, 1_000);
        assert!(!m.in_deficit_for(QuotaGroupId(9), &unit));
        assert!(!m.over_min(QuotaGroupId(9)));
        m.add_usage(QuotaGroupId(9), &unit, 1);
        assert!(m.over_min(QuotaGroupId(9)));
    }
}
