//! Job-level multi-level blacklist (paper Section 4.3.2, bottom-up).
//!
//! "If one instance is reported failed on a machine, the machine will be
//! added into the instance's blacklist. If a machine is marked as bad
//! machine by a certain number of instances, this machine will be added
//! into task's blacklist and no longer be used by this task." The JobMaster
//! additionally escalates task-level marks to FuxiMaster, which aggregates
//! across jobs (handled in `fuxi-core::blacklist`).

use fuxi_proto::{MachineId, TaskId};
use std::collections::{BTreeMap, BTreeSet};

/// Blacklist thresholds.
#[derive(Debug, Clone)]
pub struct JobBlacklistConfig {
    /// Distinct instances that must fail on a machine before the *task*
    /// blacklists it.
    pub instance_marks_to_task: usize,
    /// Distinct tasks that must blacklist a machine before the *job*
    /// reports it to FuxiMaster.
    pub task_marks_to_job: usize,
}

impl Default for JobBlacklistConfig {
    fn default() -> Self {
        Self {
            instance_marks_to_task: 3,
            task_marks_to_job: 1,
        }
    }
}

/// What a recorded failure escalated to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Escalation {
    /// Instance-level only.
    Instance,
    /// The task now blacklists the machine.
    Task,
    /// The job now considers the machine bad (report to FuxiMaster).
    Job,
}

/// The per-job blacklist state, shared by all of a job's TaskMasters.
#[derive(Debug, Default)]
pub struct JobBlacklist {
    cfg: JobBlacklistConfigInner,
    /// (task, machine) → distinct failing instance indexes.
    instance_marks: BTreeMap<(TaskId, MachineId), BTreeSet<u32>>,
    /// task → machines it blacklisted.
    task_level: BTreeMap<TaskId, BTreeSet<MachineId>>,
    /// machines the whole job considers bad.
    job_level: BTreeSet<MachineId>,
}

#[derive(Debug)]
struct JobBlacklistConfigInner {
    instance_marks_to_task: usize,
    task_marks_to_job: usize,
}

impl Default for JobBlacklistConfigInner {
    fn default() -> Self {
        let d = JobBlacklistConfig::default();
        Self {
            instance_marks_to_task: d.instance_marks_to_task,
            task_marks_to_job: d.task_marks_to_job,
        }
    }
}

impl JobBlacklist {
    /// Creates a new instance with the given configuration.
    pub fn new(cfg: JobBlacklistConfig) -> Self {
        Self {
            cfg: JobBlacklistConfigInner {
                instance_marks_to_task: cfg.instance_marks_to_task,
                task_marks_to_job: cfg.task_marks_to_job,
            },
            ..Self::default()
        }
    }

    /// Records that `instance` of `task` failed on `machine`; returns the
    /// highest level the mark escalated to.
    pub fn record_failure(&mut self, task: TaskId, instance: u32, machine: MachineId) -> Escalation {
        let marks = self.instance_marks.entry((task, machine)).or_default();
        marks.insert(instance);
        if marks.len() < self.cfg.instance_marks_to_task {
            return Escalation::Instance;
        }
        let newly_task = self.task_level.entry(task).or_default().insert(machine);
        if !newly_task {
            return Escalation::Instance; // already task-blacklisted
        }
        let tasks_marking = self
            .task_level
            .iter()
            .filter(|(_, ms)| ms.contains(&machine))
            .count();
        if tasks_marking >= self.cfg.task_marks_to_job && self.job_level.insert(machine) {
            Escalation::Job
        } else {
            Escalation::Task
        }
    }

    /// `true` if `task` must not schedule on `machine` ("no longer be used
    /// by this task"), considering both task and job level.
    pub fn task_avoids(&self, task: TaskId, machine: MachineId) -> bool {
        self.job_level.contains(&machine)
            || self
                .task_level
                .get(&task)
                .map(|ms| ms.contains(&machine))
                .unwrap_or(false)
    }

    /// Machines a specific instance must avoid on retry (its own failure
    /// history plus the escalated levels).
    pub fn instance_avoid_set(&self, task: TaskId, instance: u32) -> BTreeSet<MachineId> {
        let mut set: BTreeSet<MachineId> = self
            .instance_marks
            .iter()
            .filter(|(&(t, _), insts)| t == task && insts.contains(&instance))
            .map(|(&(_, m), _)| m)
            .collect();
        if let Some(task_ms) = self.task_level.get(&task) {
            set.extend(task_ms.iter().copied());
        }
        set.extend(self.job_level.iter().copied());
        set
    }

    /// Job level.
    pub fn job_level(&self) -> &BTreeSet<MachineId> {
        &self.job_level
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bl() -> JobBlacklist {
        JobBlacklist::new(JobBlacklistConfig {
            instance_marks_to_task: 2,
            task_marks_to_job: 2,
        })
    }

    #[test]
    fn escalates_instance_to_task_to_job() {
        let mut b = bl();
        let m = MachineId(5);
        assert_eq!(b.record_failure(TaskId(0), 1, m), Escalation::Instance);
        assert!(!b.task_avoids(TaskId(0), m));
        // A second *distinct* instance failing trips the task level.
        assert_eq!(b.record_failure(TaskId(0), 2, m), Escalation::Task);
        assert!(b.task_avoids(TaskId(0), m));
        assert!(!b.task_avoids(TaskId(1), m), "other tasks unaffected");
        // Another task marking the machine trips the job level.
        assert_eq!(b.record_failure(TaskId(1), 0, m), Escalation::Instance);
        assert_eq!(b.record_failure(TaskId(1), 7, m), Escalation::Job);
        assert!(b.task_avoids(TaskId(2), m), "job level covers all tasks");
        assert!(b.job_level().contains(&m));
    }

    #[test]
    fn repeated_failures_of_same_instance_count_once() {
        let mut b = bl();
        let m = MachineId(0);
        assert_eq!(b.record_failure(TaskId(0), 1, m), Escalation::Instance);
        assert_eq!(
            b.record_failure(TaskId(0), 1, m),
            Escalation::Instance,
            "same instance retrying does not escalate"
        );
        assert!(!b.task_avoids(TaskId(0), m));
    }

    #[test]
    fn instance_avoid_set_accumulates_levels() {
        let mut b = bl();
        b.record_failure(TaskId(0), 3, MachineId(1));
        let set = b.instance_avoid_set(TaskId(0), 3);
        assert!(set.contains(&MachineId(1)));
        assert!(!set.contains(&MachineId(2)));
        // Task-level entries apply to every instance of the task.
        b.record_failure(TaskId(0), 4, MachineId(2));
        b.record_failure(TaskId(0), 5, MachineId(2));
        let set = b.instance_avoid_set(TaskId(0), 3);
        assert!(set.contains(&MachineId(2)));
        // Other instances don't inherit instance-level marks.
        let other = b.instance_avoid_set(TaskId(0), 9);
        assert!(!other.contains(&MachineId(1)));
        assert!(other.contains(&MachineId(2)));
    }
}
