//! Writes `BENCH_sched.json`: machine-readable medians (ns/decision) for the
//! scheduler hot-path benches at 1,000 and 5,000 machines, with the
//! hierarchical fit index on (`*_indexed`) and off (`*_naive`,
//! `reference_mode`) so the speedup ratio is measured in one binary on one
//! machine, not stitched from two checkouts.
//!
//! Usage:
//! `cargo run --release -p fuxi-bench --bin bench_snapshot [--check] [out.json]`
//! Set `CRITERION_QUICK=1` for a fast low-confidence pass.
//!
//! Every entry carries provenance (machine count; the snapshot header
//! records `quick_mode` and the git revision) so a committed
//! BENCH_sched.json says exactly what was measured. With `--check` the
//! binary is a CI perf gate: it exits non-zero if the fit index loses to
//! the naive scan (`naive_over_indexed < 1.0`) on any `sched_free_up_*` or
//! `sched_delta_*` bench.
//!
//! The snapshot also measures end-to-end kernel throughput
//! (`sim_events_per_sec`: a 5k-machine × 100k-job event storm on both the
//! calendar and heap kernels), runs the §5.2 synthetic experiment twice —
//! tracing on and off — and records the Figure 9 decision-time medians of
//! both. It exits non-zero if the instrumented median regresses more than
//! 5%, and writes a `trace_sample.jsonl` (next to the output file) from
//! the traced run for CI artifact upload / `trace_dump` smoke tests.
//!
//! A second overhead pair does the same for the live metrics plane
//! (windowed series + in-band reports + master rollup) on vs off, with the
//! same 5% budget on the scheduling median (`metrics_plane_overhead`).

use criterion::{black_box, Criterion};
use fuxi_bench::{scenarios, Args};
use fuxi_sim::obs::export::export_jsonl;
use fuxi_sim::TracerConfig;
use fuxi_core::scheduler::{LocalityTree, QueueKey};
use fuxi_proto::request::RequestDelta;
use fuxi_proto::{AppId, MachineId, Priority, RackId, ResourceVec, UnitId};

/// One scale's decision benches: free-up (return → decide → grant) and
/// request-delta (±1 demand, forcing a cluster-level placement attempt),
/// each with the fit index on and off.
fn run_scale(c: &mut Criterion, label: &str, n_racks: usize, per_rack: usize) {
    let n_machines = (n_racks * per_rack) as u64;
    for (mode, reference) in [("indexed", false), ("naive", true)] {
        c.bench_function(&format!("sched_free_up_{label}_{mode}"), |b| {
            let mut e = scenarios::fragmented_engine(n_racks, per_rack, reference);
            // Stride coprime with the machine count: frees land all over
            // the cluster relative to the rotating cursor.
            let stride = n_machines / 2 + 3;
            let mut i = 0u64;
            b.iter(|| {
                let m = MachineId(((i * stride) % n_machines) as u32);
                i += 1;
                e.return_grant(AppId(0), UnitId(0), m, 1);
                black_box(e.drain_events());
            });
        });
        c.bench_function(&format!("sched_delta_{label}_{mode}"), |b| {
            let mut e = scenarios::fragmented_engine(n_racks, per_rack, reference);
            let mut i = 0u32;
            b.iter(|| {
                let app = AppId(1 + i % 999);
                i += 1;
                e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), 1)]);
                e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), -1)]);
                e.drain_events();
            });
        });
    }
}

/// The locality-tree waiting-queue consult (same shape as the
/// `locality_tree` criterion bench's 10k-waiting case).
fn run_tree(c: &mut Criterion) {
    let fp = ResourceVec::new(500, 2048);
    let mut t = LocalityTree::new();
    for i in 0..10_000u64 {
        let k = QueueKey {
            priority: Priority((i % 7) as u16 * 100),
            seq: i,
            app: AppId(i as u32),
            unit: UnitId(0),
        };
        t.enqueue_cluster(k, &fp);
        t.enqueue_machine(MachineId((i % 1000) as u32), k, &fp);
        t.enqueue_rack(RackId((i % 20) as u32), k, &fp);
    }
    let free = ResourceVec::cores_mb(12, 96 * 1024);
    c.bench_function("tree_candidates_10k_waiting", |b| {
        b.iter(|| black_box(t.candidates_for_machine(MachineId(5), RackId(5), black_box(&free), 64)));
    });
}

/// Figure 9 decision-path medians with tracing on and off, from two
/// otherwise-identical synthetic runs (same seed, same workload).
struct TracingOverhead {
    traced_median_s: f64,
    untraced_median_s: f64,
    traced_count: u64,
    /// traced / untraced median — the observability tax on the hot path.
    ratio: f64,
    /// JSONL export of the traced run, for artifacts and smoke tests.
    sample_jsonl: String,
}

fn measure_tracing_overhead(quick: bool) -> TracingOverhead {
    let args = Args {
        scale: if quick { 0.005 } else { 0.02 },
        duration_s: if quick { 120 } else { 300 },
        seed: 2014,
        trace_out: None,
    };
    let median = |out: &fuxi_bench::SyntheticOutcome| {
        let h = out.cluster.world.metrics().histogram("fm.sched_s").expect("sched happened");
        (h.quantile(0.5), h.count())
    };
    let off = TracerConfig { enabled: false, ..TracerConfig::default() };
    let untraced = fuxi_bench::run_synthetic_experiment_with_obs(&args, off);
    let traced = fuxi_bench::run_synthetic_experiment_with_obs(&args, TracerConfig::default());
    let (untraced_median_s, _) = median(&untraced);
    let (traced_median_s, traced_count) = median(&traced);
    TracingOverhead {
        traced_median_s,
        untraced_median_s,
        traced_count,
        ratio: traced_median_s / untraced_median_s.max(1e-12),
        sample_jsonl: export_jsonl(traced.cluster.world.tracer()),
    }
}

/// Metrics-plane tax on the same decision path: two otherwise-identical
/// synthetic runs with the windowed/rollup/report plane on and off.
struct PlaneOverhead {
    on_median_s: f64,
    off_median_s: f64,
    on_count: u64,
    /// Reports the master ingested during the plane-on run — proves the
    /// "on" leg actually exercised the aggregation path.
    reports_received: u64,
    /// on / off median — the metrics-plane tax on the hot path.
    ratio: f64,
}

fn measure_plane_overhead(quick: bool) -> PlaneOverhead {
    let args = Args {
        scale: if quick { 0.005 } else { 0.02 },
        duration_s: if quick { 120 } else { 300 },
        seed: 2014,
        trace_out: None,
    };
    // Tracing off in both legs so this isolates the metrics plane alone.
    let obs = || TracerConfig { enabled: false, ..TracerConfig::default() };
    let median = |out: &fuxi_bench::SyntheticOutcome| {
        let h = out.cluster.world.metrics().histogram("fm.sched_s").expect("sched happened");
        (h.quantile(0.5), h.count())
    };
    let plane_off = fuxi_sim::obs::MetricsPlaneConfig { enabled: false, ..Default::default() };
    let off = fuxi_bench::run_synthetic_experiment_with_plane(&args, obs(), plane_off);
    let on = fuxi_bench::run_synthetic_experiment_with_plane(
        &args,
        obs(),
        fuxi_sim::obs::MetricsPlaneConfig::default(),
    );
    let (off_median_s, _) = median(&off);
    let (on_median_s, on_count) = median(&on);
    let reports_received = on.cluster.hub.snapshot().reports_received;
    PlaneOverhead {
        on_median_s,
        off_median_s,
        on_count,
        reports_received,
        ratio: on_median_s / off_median_s.max(1e-12),
    }
}

/// Machine count behind a bench entry, from its label.
fn machines_of(name: &str) -> u64 {
    if name.contains("5k_machines") {
        5_000
    } else {
        // 1k-scale engines and the locality tree (1,000 machine queues).
        1_000
    }
}

/// Short git revision of the working tree, for snapshot provenance.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn main() {
    fuxi_bench::warn_if_debug();
    let mut check = false;
    let mut out_path = "BENCH_sched.json".to_owned();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            other => out_path = other.to_owned(),
        }
    }
    let quick = std::env::var("CRITERION_QUICK").map(|v| v == "1").unwrap_or(false);
    let rev = git_rev();

    let mut c = Criterion::default();
    run_scale(&mut c, "1k_machines", 20, 50);
    run_scale(&mut c, "5k_machines", 100, 50);
    run_tree(&mut c);

    // Hand-rolled JSON: names are static identifiers, nothing to escape.
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"generated_by\": \"bench_snapshot\",\n");
    json.push_str(&format!("  \"quick_mode\": {quick},\n"));
    json.push_str(&format!("  \"git_rev\": \"{rev}\",\n"));
    json.push_str("  \"unit\": \"ns_per_decision\",\n");
    json.push_str("  \"benches\": [\n");
    for (i, s) in c.collected.iter().enumerate() {
        let sep = if i + 1 == c.collected.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"machines\": {}, \"median_ns\": {:.1}, \
             \"mean_ns\": {:.1}, \"p95_ns\": {:.1}, \"iterations\": {}}}{sep}\n",
            s.name,
            machines_of(&s.name),
            s.median_ns,
            s.mean_ns,
            s.p95_ns,
            s.iterations
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"naive_over_indexed\": {\n");
    let pairs: Vec<(String, f64)> = c
        .collected
        .iter()
        .filter_map(|s| {
            let base = s.name.strip_suffix("_indexed")?;
            let naive = c.collected.iter().find(|n| n.name == format!("{base}_naive"))?;
            Some((base.to_owned(), naive.median_ns / s.median_ns))
        })
        .collect();
    for (i, (base, ratio)) in pairs.iter().enumerate() {
        let sep = if i + 1 == pairs.len() { "" } else { "," };
        json.push_str(&format!("    \"{base}\": {ratio:.2}{sep}\n"));
    }
    json.push_str("  },\n");

    println!("\nmeasuring end-to-end kernel throughput (event storm)...");
    let (storm_machines, storm_jobs) = if quick { (500, 10_000) } else { (5_000, 100_000) };
    let cal = fuxi_bench::sim_storm::run_event_storm(
        storm_machines,
        storm_jobs,
        fuxi_sim::QueueKernel::Calendar,
        2014,
    );
    let heap = fuxi_bench::sim_storm::run_event_storm(
        storm_machines,
        storm_jobs,
        fuxi_sim::QueueKernel::Heap,
        2014,
    );
    assert_eq!(cal.events, heap.events, "kernels must process identical schedules");
    json.push_str("  \"sim_events_per_sec\": {\n");
    json.push_str(&format!(
        "    \"machines\": {},\n    \"jobs\": {},\n    \"events\": {},\n",
        cal.machines, cal.jobs, cal.events
    ));
    json.push_str(&format!(
        "    \"calendar\": {{\"wall_s\": {:.3}, \"events_per_sec\": {:.0}}},\n",
        cal.wall_s, cal.events_per_sec
    ));
    json.push_str(&format!(
        "    \"heap\": {{\"wall_s\": {:.3}, \"events_per_sec\": {:.0}}},\n",
        heap.wall_s, heap.events_per_sec
    ));
    json.push_str(&format!(
        "    \"calendar_over_heap\": {:.3}\n",
        cal.events_per_sec / heap.events_per_sec.max(1e-9)
    ));
    json.push_str("  },\n");

    println!("\nmeasuring fig9 tracing overhead (two synthetic runs)...");
    let ovh = measure_tracing_overhead(quick);
    json.push_str("  \"fig9_tracing_overhead\": {\n");
    json.push_str(&format!(
        "    \"untraced_median_s\": {:.9},\n    \"traced_median_s\": {:.9},\n    \
         \"traced_decisions\": {},\n    \"traced_over_untraced\": {:.4}\n",
        ovh.untraced_median_s, ovh.traced_median_s, ovh.traced_count, ovh.ratio
    ));
    json.push_str("  },\n");

    println!("\nmeasuring metrics-plane overhead (two synthetic runs)...");
    let plane = measure_plane_overhead(quick);
    json.push_str("  \"metrics_plane_overhead\": {\n");
    json.push_str(&format!(
        "    \"plane_off_median_s\": {:.9},\n    \"plane_on_median_s\": {:.9},\n    \
         \"plane_on_decisions\": {},\n    \"reports_received\": {},\n    \
         \"on_over_off\": {:.4}\n",
        plane.off_median_s, plane.on_median_s, plane.on_count, plane.reports_received, plane.ratio
    ));
    json.push_str("  }\n}\n");

    std::fs::write(&out_path, &json).expect("write snapshot");
    let sample_path = std::path::Path::new(&out_path).with_file_name("trace_sample.jsonl");
    std::fs::write(&sample_path, &ovh.sample_jsonl).expect("write trace sample");
    println!("\nwrote {out_path}");
    println!("wrote {} ({} bytes)", sample_path.display(), ovh.sample_jsonl.len());
    for (base, ratio) in &pairs {
        println!("  {base}: naive/indexed = {ratio:.2}x");
    }
    println!(
        "  sim_events_per_sec ({} machines, {} jobs): calendar {:.0}/s ({:.2}s), heap {:.0}/s ({:.2}s)",
        cal.machines, cal.jobs, cal.events_per_sec, cal.wall_s, heap.events_per_sec, heap.wall_s
    );
    // The CI perf gate: the fit index must not lose its own hot paths, and
    // the end-to-end scenario must stay inside the 30 s wall budget.
    if check {
        let mut bad = false;
        for (base, ratio) in &pairs {
            if (base.starts_with("sched_free_up") || base.starts_with("sched_delta"))
                && *ratio < 1.0
            {
                eprintln!("FAIL: {base} naive/indexed = {ratio:.2}x < 1.0 — the fit index lost");
                bad = true;
            }
        }
        if !quick && cal.wall_s > 30.0 {
            eprintln!(
                "FAIL: 5k-machine × 100k-job event storm took {:.1}s (> 30s budget)",
                cal.wall_s
            );
            bad = true;
        }
        if bad {
            std::process::exit(1);
        }
    }
    println!(
        "  fig9 median: {:.2} us untraced vs {:.2} us traced ({:.1}% overhead, {} decisions)",
        ovh.untraced_median_s * 1e6,
        ovh.traced_median_s * 1e6,
        (ovh.ratio - 1.0) * 100.0,
        ovh.traced_count
    );
    // The acceptance gate: tracing must not slow the decision path >5%.
    if ovh.ratio > 1.05 {
        eprintln!(
            "FAIL: tracing overhead {:.1}% exceeds the 5% budget on the fig9 median",
            (ovh.ratio - 1.0) * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "  metrics plane median: {:.2} us off vs {:.2} us on ({:.1}% overhead, {} reports ingested)",
        plane.off_median_s * 1e6,
        plane.on_median_s * 1e6,
        (plane.ratio - 1.0) * 100.0,
        plane.reports_received
    );
    assert!(
        plane.reports_received > 0,
        "plane-on run must ingest at least one metrics report"
    );
    // The acceptance gate: windowed metrics + in-band reports + rollup must
    // not slow the decision path >5% either.
    if plane.ratio > 1.05 {
        eprintln!(
            "FAIL: metrics-plane overhead {:.1}% exceeds the 5% budget on the sched median",
            (plane.ratio - 1.0) * 100.0
        );
        std::process::exit(1);
    }
}
