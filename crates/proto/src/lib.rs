#![warn(missing_docs)]
//! # fuxi-proto
//!
//! Shared protocol types for the Fuxi reproduction (VLDB 2014): identifiers,
//! multi-dimensional resource descriptions, cluster topology, schedule units,
//! incremental resource requests/grants, and every wire message exchanged
//! between FuxiMaster, FuxiAgents, application masters (JobMasters), and
//! task workers.
//!
//! This crate is the dependency hub that keeps `fuxi-core`, `fuxi-agent` and
//! `fuxi-job` decoupled from each other: they all speak the types defined
//! here, mirroring the paper's clean AM ↔ FM ↔ FA protocol boundaries
//! (Sections 2.2 and 3 of the paper).

pub mod error;
pub mod health;
pub mod ids;
pub mod msg;
pub mod request;
pub mod resource;
pub mod topology;
pub mod wire;

pub use error::ProtoError;
pub use health::NodeHealthReport;
pub use ids::{
    AppId, FlowTag, InstanceId, JobId, MachineId, Priority, QuotaGroupId, RackId, TaskId, UnitId,
    WorkerId,
};
pub use msg::{FailReason, InstanceOutcome, InstanceWork, JobSummary, Msg};
pub use request::{
    CapacityChange, GrantDelta, GrantLedger, RequestDelta, RequestState, ScheduleUnitDef,
    WantLevels,
};
pub use resource::{ResourceVec, VirtualResourceId, VirtualResourceRegistry, CPU_MILLI_PER_CORE};
pub use topology::{Locality, MachineSpec, Topology, TopologyBuilder};
pub use wire::{FrameType, WireError, PROTO_VERSION};
