//! Versioned binary wire encoding for [`Msg`] and the deployment control
//! frames — the single entry point every transport uses.
//!
//! Two layers:
//!
//! 1. **Value codec** — a compact, exact binary form of the serde value
//!    tree (`u64` round-trips bit-exactly, `f64` via `to_bits`). Every
//!    serializable protocol type rides this; there is deliberately no
//!    second (JSON) path on the wire, so all peers agree byte-for-byte.
//! 2. **Frame header** — `magic "FUXI" | u16 proto version | u16 frame
//!    type | u32 payload length`, on *every* frame. The version is
//!    negotiated once in the HELLO exchange; the per-frame echo makes a
//!    mid-stream desync detectable instead of silently misparsed.
//!
//! Unknown frame types are *skippable*: the header gives the exact payload
//! length, so an old peer steps over a frame kind it does not understand
//! (forward compatibility). A version the decoder does not speak is a
//! typed [`WireError::VersionMismatch`], never a decode panic.

use crate::msg::Msg;
use fuxi_sim::ActorId;
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Protocol version spoken by this build. Bump on any change to the
/// encoded shape of [`Msg`] or the control frames.
pub const PROTO_VERSION: u16 = 1;

/// Frame magic: every frame starts with these four bytes.
pub const MAGIC: [u8; 4] = *b"FUXI";

/// Frame header length: magic (4) + version (2) + frame type (2) + payload
/// length (4).
pub const HEADER_LEN: usize = 12;

/// Maximum accepted payload size (guards against a corrupt length prefix).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Maximum nesting depth the value decoder accepts (a corrupt or hostile
/// frame must not overflow the stack).
const MAX_DEPTH: u32 = 64;

/// What a frame carries. The `u16` on the wire leaves room for future
/// kinds; receivers skip values they do not recognise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum FrameType {
    /// Connection opener: [`Hello`] payload, version negotiation.
    Hello = 1,
    /// Handshake accepted: [`HelloAck`] payload.
    HelloAck = 2,
    /// Handshake refused: raw UTF-8 reason payload, then close.
    HelloReject = 3,
    /// A routed actor message: [`RoutedMsg`] payload.
    Msg = 4,
    /// Name-service replication: [`NameUpdate`] payload.
    NameUpdate = 5,
    /// Checkpoint-store replication: [`StoreUpdate`] payload.
    StorePut = 6,
    /// Orderly shutdown notice; empty payload.
    Bye = 7,
}

impl FrameType {
    /// Decodes the wire value; `None` for frame kinds this build does not
    /// know (the caller skips the payload).
    pub fn from_u16(v: u16) -> Option<FrameType> {
        match v {
            1 => Some(FrameType::Hello),
            2 => Some(FrameType::HelloAck),
            3 => Some(FrameType::HelloReject),
            4 => Some(FrameType::Msg),
            5 => Some(FrameType::NameUpdate),
            6 => Some(FrameType::StorePut),
            7 => Some(FrameType::Bye),
            _ => None,
        }
    }
}

/// Typed transport/codec error. Connection supervision keys off
/// [`WireError::ConnectionLost`]; version negotiation off
/// [`WireError::VersionMismatch`] / [`WireError::Rejected`].
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Peer speaks a protocol version this build does not.
    VersionMismatch {
        /// Version this build speaks.
        ours: u16,
        /// Version the peer offered.
        theirs: u16,
    },
    /// Frame did not start with [`MAGIC`] — not a Fuxi peer, or stream
    /// desync.
    BadMagic([u8; 4]),
    /// Declared payload length exceeds [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// The stream died (EOF mid-frame, reset, I/O error). Triggers
    /// reconnect supervision.
    ConnectionLost(String),
    /// Payload bytes did not decode as the declared frame type.
    Malformed(String),
    /// The peer refused our HELLO (carries its version and reason).
    Rejected {
        /// Version the rejecting peer speaks.
        peer_version: u16,
        /// Human-readable refusal reason.
        reason: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::VersionMismatch { ours, theirs } => {
                write!(f, "protocol version mismatch: ours v{ours}, peer v{theirs}")
            }
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::FrameTooLarge(n) => write!(f, "frame of {n} bytes exceeds MAX_FRAME"),
            WireError::ConnectionLost(why) => write!(f, "connection lost: {why}"),
            WireError::Malformed(why) => write!(f, "malformed frame: {why}"),
            WireError::Rejected { peer_version, reason } => {
                write!(f, "handshake rejected by peer (v{peer_version}): {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Control-frame payloads
// ---------------------------------------------------------------------

/// HELLO payload: who is connecting and which actor-id window it owns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hello {
    /// Human-readable node name (diagnostics only).
    pub node: String,
    /// Index of this node in the deployment topology.
    pub node_index: u32,
    /// First actor id owned by this node (`node_index << ACTOR_BASE_SHIFT`).
    pub actor_base: u32,
    /// Monotonic per-node connection counter: bumped on every reconnect so
    /// the hub can tell a fresh session from a stale one.
    pub session_epoch: u64,
}

/// HELLO-ACK payload: the hub's identity plus current replicated state so
/// a (re)connecting node starts from a fresh name/store view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HelloAck {
    /// Hub's node name.
    pub node: String,
    /// Full name-service snapshot at accept time.
    pub names: Vec<(String, ActorId)>,
    /// Full checkpoint-store snapshot at accept time.
    pub store: Vec<(String, Vec<u8>)>,
}

// Note: the HELLO-REJECT payload is deliberately *raw UTF-8* (the refusal
// reason), not a value-encoded struct — a peer being rejected for speaking
// the wrong version must still be able to read why.

/// One routed actor message crossing a process boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutedMsg {
    /// Sending actor.
    pub from: ActorId,
    /// Destination actor (resolved against the receiving node's base, or
    /// relayed onward by the hub).
    pub to: ActorId,
    /// The message.
    pub msg: Msg,
}

/// Name-service replication: a registration (`id = Some`) or removal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NameUpdate {
    /// Service name.
    pub name: String,
    /// New owner, or `None` on deregistration.
    pub id: Option<ActorId>,
}

/// Checkpoint-store replication: a put (`value = Some`) or delete.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoreUpdate {
    /// Store key.
    pub key: String,
    /// New value, or `None` on delete.
    pub value: Option<Vec<u8>>,
}

// ---------------------------------------------------------------------
// Value codec
// ---------------------------------------------------------------------

const T_NULL: u8 = 0;
const T_FALSE: u8 = 1;
const T_TRUE: u8 = 2;
const T_UINT: u8 = 3;
const T_INT: u8 = 4;
const T_FLOAT: u8 = 5;
const T_STR: u8 = 6;
const T_ARRAY: u8 = 7;
const T_OBJECT: u8 = 8;

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(T_NULL),
        Value::Bool(false) => out.push(T_FALSE),
        Value::Bool(true) => out.push(T_TRUE),
        Value::UInt(n) => {
            out.push(T_UINT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Int(n) => {
            out.push(T_INT);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(T_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(T_STR);
            encode_bytes(s.as_bytes(), out);
        }
        Value::Array(items) => {
            out.push(T_ARRAY);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(T_OBJECT);
            out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
            for (k, val) in fields {
                encode_bytes(k.as_bytes(), out);
                encode_value(val, out);
            }
        }
    }
}

fn encode_bytes(b: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.pos < n {
            return Err(WireError::Malformed(format!(
                "truncated value: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WireError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Malformed("non-utf8 string".into()))
    }
}

fn decode_value(r: &mut Reader<'_>, depth: u32) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::Malformed("value nesting too deep".into()));
    }
    match r.u8()? {
        T_NULL => Ok(Value::Null),
        T_FALSE => Ok(Value::Bool(false)),
        T_TRUE => Ok(Value::Bool(true)),
        T_UINT => Ok(Value::UInt(r.u64()?)),
        T_INT => Ok(Value::Int(r.u64()? as i64)),
        T_FLOAT => Ok(Value::Float(f64::from_bits(r.u64()?))),
        T_STR => Ok(Value::Str(r.str()?)),
        T_ARRAY => {
            let n = r.u32()? as usize;
            let mut items = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                items.push(decode_value(r, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        T_OBJECT => {
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let k = r.str()?;
                fields.push((k, decode_value(r, depth + 1)?));
            }
            Ok(Value::Object(fields))
        }
        t => Err(WireError::Malformed(format!("unknown value tag {t}"))),
    }
}

// ---------------------------------------------------------------------
// Single encode/decode entry points
// ---------------------------------------------------------------------

/// Serializes any protocol payload under an explicit version. For
/// `version` other than [`PROTO_VERSION`] this build cannot produce
/// frames and returns [`WireError::VersionMismatch`] — a caller that
/// negotiated down must refuse the connection instead of guessing.
pub fn encode_payload<T: Serialize>(version: u16, payload: &T) -> Result<Vec<u8>, WireError> {
    if version != PROTO_VERSION {
        return Err(WireError::VersionMismatch { ours: PROTO_VERSION, theirs: version });
    }
    let mut out = Vec::with_capacity(64);
    encode_value(&payload.to_value(), &mut out);
    Ok(out)
}

/// Deserializes a payload previously produced by [`encode_payload`] at the
/// same version.
pub fn decode_payload<T: Deserialize>(version: u16, bytes: &[u8]) -> Result<T, WireError> {
    if version != PROTO_VERSION {
        return Err(WireError::VersionMismatch { ours: PROTO_VERSION, theirs: version });
    }
    let mut r = Reader { buf: bytes, pos: 0 };
    let value = decode_value(&mut r, 0)?;
    if r.pos != bytes.len() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after value",
            bytes.len() - r.pos
        )));
    }
    T::from_value(&value).map_err(|DeError(why)| WireError::Malformed(why))
}

/// Serializes one [`Msg`] — the entry point all transports use.
pub fn encode_msg(version: u16, msg: &Msg) -> Result<Vec<u8>, WireError> {
    encode_payload(version, msg)
}

/// Deserializes one [`Msg`].
pub fn decode_msg(version: u16, bytes: &[u8]) -> Result<Msg, WireError> {
    decode_payload(version, bytes)
}

// ---------------------------------------------------------------------
// Frame header
// ---------------------------------------------------------------------

/// Renders a complete frame: header + payload bytes.
pub fn encode_frame(version: u16, frame_type: u16, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&frame_type.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parsed frame header: `(version, frame type, payload length)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version stamped on the frame.
    pub version: u16,
    /// Raw frame-type value (may be unknown to this build).
    pub frame_type: u16,
    /// Payload length in bytes.
    pub len: u32,
}

/// Parses and validates the 12-byte frame header.
pub fn parse_header(buf: &[u8; HEADER_LEN]) -> Result<FrameHeader, WireError> {
    if buf[0..4] != MAGIC {
        return Err(WireError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    let frame_type = u16::from_le_bytes([buf[6], buf[7]]);
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len > MAX_FRAME {
        return Err(WireError::FrameTooLarge(len));
    }
    Ok(FrameHeader { version, frame_type, len })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::NodeHealthReport;
    use crate::ids::{AppId, InstanceId, JobId, MachineId, Priority, TaskId, UnitId, WorkerId};
    use crate::msg::{AppDescription, FailReason, InstanceOutcome, InstanceWork, JobSummary, WorkerSpec};
    use crate::request::{
        CapacityChange, GrantDelta, RequestDelta, RequestState, ScheduleUnitDef, WantLevels,
    };
    use crate::resource::ResourceVec;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn roundtrip(msg: &Msg) -> Msg {
        let bytes = encode_msg(PROTO_VERSION, msg).unwrap();
        decode_msg(PROTO_VERSION, &bytes).unwrap()
    }

    fn rid(rng: &mut SmallRng) -> ActorId {
        ActorId(rng.gen_range(0..1u32 << 26))
    }

    fn rres(rng: &mut SmallRng) -> ResourceVec {
        ResourceVec::cores_mb(rng.gen_range(1..64u64), rng.gen_range(128..65536u64))
    }

    fn rdesc(rng: &mut SmallRng) -> AppDescription {
        AppDescription {
            app_type: "fuxi_job".into(),
            priority: Priority(rng.gen_range(0..1000u16)),
            payload: format!("payload-{}", rng.gen_range(0..1000u32)),
            master_package_mb: rng.gen_range(0.0..400.0f64),
            ..AppDescription::default()
        }
    }

    fn rwork(rng: &mut SmallRng) -> InstanceWork {
        InstanceWork {
            compute_s: rng.gen_range(0.0..100.0),
            reads: vec![(MachineId(rng.gen_range(0..500u32)), rng.gen_range(0.0..64.0))],
            write_mb: rng.gen_range(0.0..64.0),
            use_flows: rng.gen_range(0..2u32) == 1,
            fetch_fanout: rng.gen_range(1..8u32),
        }
    }

    fn rinst(rng: &mut SmallRng) -> InstanceId {
        InstanceId { task: TaskId(rng.gen_range(0..100u32)), index: rng.gen_range(0..100_000u32) }
    }

    fn runit(rng: &mut SmallRng) -> ScheduleUnitDef {
        ScheduleUnitDef {
            unit: UnitId(rng.gen_range(0..64u32)),
            resource: rres(rng),
            priority: Priority(rng.gen_range(0..1000u16)),
        }
    }

    fn rstate(rng: &mut SmallRng) -> RequestState {
        RequestState {
            def: runit(rng),
            wants: WantLevels::anywhere(rng.gen_range(0..64u64)),
            avoid: Default::default(),
        }
    }

    /// Index of each variant; the exhaustive match makes *adding a `Msg`
    /// variant without extending [`sample`] a compile error*, which is the
    /// whole point of this test module.
    fn variant_index(m: &Msg) -> usize {
        match m {
            Msg::SubmitJob { .. } => 0,
            Msg::JobAccepted { .. } => 1,
            Msg::StopJob { .. } => 2,
            Msg::JobFinished { .. } => 3,
            Msg::AgentHello { .. } => 4,
            Msg::AgentHeartbeat { .. } => 5,
            Msg::StartAppMaster { .. } => 6,
            Msg::AppMasterStarted { .. } => 7,
            Msg::AppMasterStartFailed { .. } => 8,
            Msg::CapacityNotify { .. } => 9,
            Msg::MetricsReport { .. } => 10,
            Msg::AgentAllocationReport { .. } => 11,
            Msg::AgentCapacitySnapshot { .. } => 12,
            Msg::AppMasterExited { .. } => 13,
            Msg::WorkerExited { .. } => 14,
            Msg::AmAttach { .. } => 15,
            Msg::RequestUpdate { .. } => 16,
            Msg::ReturnGrant { .. } => 17,
            Msg::FullRequestSync { .. } => 18,
            Msg::GrantUpdate { .. } => 19,
            Msg::FullGrantSync { .. } => 20,
            Msg::RequestSyncNeeded { .. } => 21,
            Msg::GrantSyncNeeded { .. } => 22,
            Msg::AmDetach { .. } => 23,
            Msg::BadMachineReport { .. } => 24,
            Msg::StartWorker { .. } => 25,
            Msg::WorkerStarted { .. } => 26,
            Msg::WorkerStartFailed { .. } => 27,
            Msg::StopWorker { .. } => 28,
            Msg::CapacityWarning { .. } => 29,
            Msg::WorkerListQuery { .. } => 30,
            Msg::WorkerListReply { .. } => 31,
            Msg::WorkerRegister { .. } => 32,
            Msg::AssignInstance { .. } => 33,
            Msg::InstanceReport { .. } => 34,
            Msg::InstanceFinished { .. } => 35,
            Msg::KillInstance { .. } => 36,
            Msg::WorkerExit => 37,
            Msg::WorkerStatusQuery => 38,
            Msg::WorkerStatusReply { .. } => 39,
            Msg::JmStatusQuery => 40,
            Msg::JmStatusReply { .. } => 41,
            Msg::LockAcquire { .. } => 42,
            Msg::LockGranted { .. } => 43,
            Msg::LockKeepalive { .. } => 44,
            Msg::LockRelease { .. } => 45,
            Msg::LockLost { .. } => 46,
            Msg::FlowDone { .. } => 47,
        }
    }

    /// One randomized sample of the variant at `ix` (0..N_SAMPLES).
    fn sample(ix: usize, rng: &mut SmallRng) -> Msg {
        let app = AppId(rng.gen_range(0..1000u32));
        let job = JobId(rng.gen_range(0..1000u32));
        let unit = UnitId(rng.gen_range(0..64u32));
        let machine = MachineId(rng.gen_range(0..500u32));
        let worker = WorkerId(rng.gen_range(0..10_000u64));
        match ix {
            0 => Msg::SubmitJob { job, desc: rdesc(rng), client: rid(rng) },
            1 => Msg::JobAccepted { job, app },
            2 => Msg::StopJob { job },
            3 => Msg::JobFinished {
                job,
                app,
                success: rng.gen_range(0..2u32) == 1,
                message: "done".into(),
            },
            4 => Msg::AgentHello { machine, total: rres(rng) },
            5 => Msg::AgentHeartbeat { machine, health: NodeHealthReport::default() },
            6 => Msg::StartAppMaster { app, job, desc: rdesc(rng) },
            7 => Msg::AppMasterStarted { app, actor: rid(rng), machine },
            8 => Msg::AppMasterStartFailed { app, reason: "disk".into() },
            9 => Msg::CapacityNotify {
                changes: vec![CapacityChange {
                    app,
                    unit,
                    unit_resource: rres(rng),
                    delta: rng.gen_range(-4..4i64),
                }],
            },
            10 => Msg::MetricsReport {
                report: if rng.gen_range(0..2u32) == 1 {
                    fuxi_obs::MetricsReport::Agent(fuxi_obs::AgentReport {
                        machine: machine.0,
                        t_s: rng.gen_range(0.0..100.0),
                        used_mem_mb: rng.gen_range(0..4096u64),
                        ..Default::default()
                    })
                } else {
                    fuxi_obs::MetricsReport::Job(fuxi_obs::JobReport {
                        app: app.0,
                        job: job.0,
                        instances_running: rng.gen_range(0..64u64),
                        ..Default::default()
                    })
                },
            },
            11 => Msg::AgentAllocationReport {
                machine,
                total: rres(rng),
                allocations: vec![(app, unit, rres(rng), rng.gen_range(0..8u64))],
                app_masters: vec![(app, rid(rng))],
            },
            12 => Msg::AgentCapacitySnapshot {
                allocations: vec![(app, unit, rres(rng), rng.gen_range(0..8u64))],
            },
            13 => Msg::AppMasterExited { app, machine },
            14 => Msg::WorkerExited { app, worker, machine, reason: FailReason::Crashed },
            15 => Msg::AmAttach { app, units: vec![runit(rng)] },
            16 => Msg::RequestUpdate {
                app,
                seq: rng.gen_range(1..100u64),
                deltas: vec![RequestDelta {
                    unit,
                    machine: vec![(machine, rng.gen_range(-4..4i64))],
                    rack: vec![],
                    cluster: rng.gen_range(-8..8i64),
                    avoid_add: vec![machine],
                    avoid_remove: vec![],
                }],
            },
            17 => Msg::ReturnGrant { app, unit, machine, count: rng.gen_range(1..4u64) },
            18 => Msg::FullRequestSync {
                app,
                units: vec![runit(rng)],
                states: vec![rstate(rng)],
                held: vec![(unit, vec![(machine, rng.gen_range(0..4u64))])],
            },
            19 => Msg::GrantUpdate {
                seq: rng.gen_range(1..100u64),
                grants: vec![GrantDelta {
                    unit,
                    changes: vec![(machine, rng.gen_range(-4..4i64))],
                }],
            },
            20 => Msg::FullGrantSync {
                snapshot: vec![(unit, vec![(machine, rng.gen_range(0..4u64))])],
            },
            21 => Msg::RequestSyncNeeded { app },
            22 => Msg::GrantSyncNeeded { app },
            23 => Msg::AmDetach { app },
            24 => Msg::BadMachineReport { app, machine },
            25 => Msg::StartWorker {
                spec: WorkerSpec {
                    app,
                    worker,
                    unit,
                    limit: rres(rng),
                    binary_mb: rng.gen_range(0.0..400.0),
                    master: rid(rng),
                    usage_factor: rng.gen_range(0.1..1.5),
                },
            },
            26 => Msg::WorkerStarted { worker, actor: rid(rng), machine },
            27 => Msg::WorkerStartFailed { worker, machine, reason: "launch".into() },
            28 => Msg::StopWorker { app, worker },
            29 => Msg::CapacityWarning { app, machine, over: rres(rng) },
            30 => Msg::WorkerListQuery { app, machine },
            31 => Msg::WorkerListReply { app, machine, workers: vec![(worker, rid(rng))] },
            32 => Msg::WorkerRegister { app, worker, machine },
            33 => Msg::AssignInstance {
                instance: rinst(rng),
                attempt: rng.gen_range(0..4u32),
                work: rwork(rng),
            },
            34 => Msg::InstanceReport {
                worker,
                instance: rinst(rng),
                attempt: rng.gen_range(0..4u32),
                progress: rng.gen_range(0.0..1.0),
            },
            35 => Msg::InstanceFinished {
                worker,
                instance: rinst(rng),
                attempt: rng.gen_range(0..4u32),
                outcome: if rng.gen_range(0..2u32) == 1 {
                    InstanceOutcome::Success
                } else {
                    InstanceOutcome::Failed(FailReason::IoError)
                },
                runtime_s: rng.gen_range(0.0..100.0),
            },
            36 => Msg::KillInstance { instance: rinst(rng), attempt: rng.gen_range(0..4u32) },
            37 => Msg::WorkerExit,
            38 => Msg::WorkerStatusQuery,
            39 => Msg::WorkerStatusReply {
                app,
                worker,
                machine,
                running: Some((rinst(rng), rng.gen_range(0..4u32), rng.gen_range(0.0..1.0))),
            },
            40 => Msg::JmStatusQuery,
            41 => Msg::JmStatusReply {
                job,
                summary: JobSummary { tasks_total: 4, instances_total: 20, ..Default::default() },
            },
            42 => Msg::LockAcquire { name: "fuxi-master".into(), ttl_s: rng.gen_range(1.0..10.0) },
            43 => Msg::LockGranted { name: "fuxi-master".into() },
            44 => Msg::LockKeepalive { name: "fuxi-master".into() },
            45 => Msg::LockRelease { name: "fuxi-master".into() },
            46 => Msg::LockLost { name: "fuxi-master".into() },
            _ => Msg::FlowDone { tag: rng.gen_range(0..1u64 << 40), failed: rng.gen_range(0..2u32) == 1 },
        }
    }

    const N_SAMPLES: usize = 48;

    #[test]
    fn every_variant_roundtrips() {
        let mut rng = SmallRng::seed_from_u64(2014);
        for ix in 0..N_SAMPLES {
            let msg = sample(ix, &mut rng);
            let back = roundtrip(&msg);
            assert_eq!(
                format!("{msg:?}"),
                format!("{back:?}"),
                "variant {ix} did not survive the wire"
            );
        }
        // Exhaustiveness guard: `variant_index` must stay in sync with the
        // enum (the compiler enforces it) and with the sampler.
        let mut rng = SmallRng::seed_from_u64(7);
        for ix in 0..N_SAMPLES {
            let _ = variant_index(&sample(ix, &mut rng));
        }
    }

    proptest! {
        #[test]
        fn randomized_msgs_roundtrip_exactly(seed in 0..u64::MAX, ix in 0..48usize) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let msg = sample(ix, &mut rng);
            let back = roundtrip(&msg);
            prop_assert_eq!(format!("{:?}", msg), format!("{:?}", back));
        }

        #[test]
        fn floats_and_u64s_are_bit_exact(bits in 0..u64::MAX) {
            let v = Value::Float(f64::from_bits(bits));
            let mut out = Vec::new();
            encode_value(&v, &mut out);
            let mut r = Reader { buf: &out, pos: 0 };
            let back = decode_value(&mut r, 0).unwrap();
            match (v, back) {
                (Value::Float(a), Value::Float(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                _ => prop_assert!(false),
            }
            let u = Value::UInt(bits);
            let mut out = Vec::new();
            encode_value(&u, &mut out);
            let mut r = Reader { buf: &out, pos: 0 };
            prop_assert_eq!(decode_value(&mut r, 0).unwrap(), Value::UInt(bits));
        }
    }

    #[test]
    fn control_payloads_roundtrip() {
        let hello = Hello {
            node: "agents-1".into(),
            node_index: 3,
            actor_base: 3 << 24,
            session_epoch: 7,
        };
        let bytes = encode_payload(PROTO_VERSION, &hello).unwrap();
        assert_eq!(decode_payload::<Hello>(PROTO_VERSION, &bytes).unwrap(), hello);

        let ack = HelloAck {
            node: "driver".into(),
            names: vec![("fuxi-master".into(), ActorId(42))],
            store: vec![("fm/hard".into(), vec![1, 2, 3])],
        };
        let bytes = encode_payload(PROTO_VERSION, &ack).unwrap();
        assert_eq!(decode_payload::<HelloAck>(PROTO_VERSION, &bytes).unwrap(), ack);

        let upd = NameUpdate { name: "fuxi-master".into(), id: None };
        let bytes = encode_payload(PROTO_VERSION, &upd).unwrap();
        assert_eq!(decode_payload::<NameUpdate>(PROTO_VERSION, &bytes).unwrap(), upd);

        let put = StoreUpdate { key: "k".into(), value: Some(vec![9]) };
        let bytes = encode_payload(PROTO_VERSION, &put).unwrap();
        assert_eq!(decode_payload::<StoreUpdate>(PROTO_VERSION, &bytes).unwrap(), put);
    }

    #[test]
    fn wrong_version_is_typed_mismatch() {
        let msg = Msg::StopJob { job: JobId(1) };
        assert_eq!(
            encode_msg(PROTO_VERSION + 1, &msg).unwrap_err(),
            WireError::VersionMismatch { ours: PROTO_VERSION, theirs: PROTO_VERSION + 1 }
        );
        let bytes = encode_msg(PROTO_VERSION, &msg).unwrap();
        assert_eq!(
            decode_msg(PROTO_VERSION + 9, &bytes).unwrap_err(),
            WireError::VersionMismatch { ours: PROTO_VERSION, theirs: PROTO_VERSION + 9 }
        );
    }

    #[test]
    fn header_roundtrip_and_rejections() {
        let frame = encode_frame(PROTO_VERSION, FrameType::Msg as u16, b"abc");
        let hdr = parse_header(frame[..HEADER_LEN].try_into().unwrap()).unwrap();
        assert_eq!(hdr.version, PROTO_VERSION);
        assert_eq!(hdr.frame_type, FrameType::Msg as u16);
        assert_eq!(hdr.len, 3);

        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            parse_header(bad[..HEADER_LEN].try_into().unwrap()),
            Err(WireError::BadMagic(_))
        ));

        let mut huge = encode_frame(PROTO_VERSION, FrameType::Msg as u16, b"");
        huge[8..12].copy_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            parse_header(huge[..HEADER_LEN].try_into().unwrap()),
            Err(WireError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn malformed_payload_is_error_not_panic() {
        assert!(decode_msg(PROTO_VERSION, &[]).is_err());
        assert!(decode_msg(PROTO_VERSION, &[255, 0, 1]).is_err());
        // A valid value of the wrong shape fails typed decode cleanly.
        let bytes = encode_payload(PROTO_VERSION, &"just a string".to_owned()).unwrap();
        assert!(decode_msg(PROTO_VERSION, &bytes).is_err());
        // Trailing garbage after a valid value is rejected.
        let mut bytes = encode_msg(PROTO_VERSION, &Msg::WorkerExit).unwrap();
        bytes.push(0);
        assert!(decode_msg(PROTO_VERSION, &bytes).is_err());
    }

    #[test]
    fn unknown_frame_type_is_identifiable_and_skippable() {
        assert_eq!(FrameType::from_u16(9999), None);
        let frame = encode_frame(PROTO_VERSION, 9999, b"future-payload");
        let hdr = parse_header(frame[..HEADER_LEN].try_into().unwrap()).unwrap();
        // The header alone tells a receiver how many bytes to step over.
        assert_eq!(hdr.len as usize, frame.len() - HEADER_LEN);
        assert_eq!(FrameType::from_u16(hdr.frame_type), None);
    }
}
