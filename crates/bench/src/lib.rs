//! # fuxi-bench
//!
//! Experiment binaries regenerating every table and figure of the paper's
//! evaluation (Section 5), plus criterion micro-benchmarks of the
//! scheduler hot paths. See DESIGN.md's experiment index for the mapping.
//!
//! All binaries accept `--scale <f>` (cluster/data scale relative to the
//! paper's 5,000-node testbed; defaults keep runs laptop-sized),
//! `--duration <s>` where applicable, and `--seed <n>`.

use fuxi_cluster::{Cluster, ClusterConfig};
use fuxi_proto::topology::MachineSpec;
use fuxi_proto::ResourceVec;
use fuxi_sim::SimDuration;
use fuxi_workloads::synthetic::SyntheticMix;

pub mod tracetool;

/// Common CLI arguments.
#[derive(Debug, Clone)]
pub struct Args {
    pub scale: f64,
    pub duration_s: u64,
    pub seed: u64,
    /// `--trace-out <dir>`: export the observability stream (JSONL event
    /// log, Chrome trace, metrics snapshot) of the run into a directory.
    pub trace_out: Option<String>,
}

impl Args {
    /// Parses `--scale`, `--duration`, `--seed` with the given defaults.
    pub fn parse(default_scale: f64, default_duration_s: u64) -> Args {
        let mut args = Args {
            scale: default_scale,
            duration_s: default_duration_s,
            seed: 2014,
            trace_out: None,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    args.scale = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(args.scale);
                    i += 2;
                }
                "--duration" => {
                    args.duration_s = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(args.duration_s);
                    i += 2;
                }
                "--seed" => {
                    args.seed = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(args.seed);
                    i += 2;
                }
                "--full" => {
                    args.scale = 1.0;
                    i += 1;
                }
                "--trace-out" => {
                    args.trace_out = argv.get(i + 1).cloned();
                    i += 2;
                }
                // Mode flags consumed by individual binaries.
                "--petasort" => {
                    i += 1;
                }
                other => {
                    eprintln!("ignoring unknown argument {other}");
                    i += 1;
                }
            }
        }
        args
    }
}

/// Warns when timing-sensitive experiments run without optimizations.
pub fn warn_if_debug() {
    #[cfg(debug_assertions)]
    eprintln!(
        "WARNING: debug build — wall-clock scheduling times (Figure 9) are \
         only meaningful with --release"
    );
}

/// The paper's testbed node for the synthetic experiment: 2×2.20 GHz 6-core
/// Xeon E5-2430 with hyper-threading (24 hardware threads — Figure 10(b)'s
/// CPU axis tops out near 120k cores over 5,000 nodes) and 96 GB memory.
pub fn synthetic_machine_spec() -> MachineSpec {
    MachineSpec {
        resources: ResourceVec::cores_mb(24, 96 * 1024),
        ..MachineSpec::default()
    }
}

/// Outcome of the §5.2 synthetic-workload experiment.
pub struct SyntheticOutcome {
    pub cluster: Cluster,
    pub stats: fuxi_cluster::SyntheticRunStats,
    pub machines: usize,
    pub concurrent: usize,
    pub duration_s: u64,
}

/// Runs the §5.2 experiment: `5000×scale` machines, `1000×scale`
/// concurrent jobs from the paper's WordCount/Terasort mix, for
/// `duration_s` of simulated time. Instance counts are unscaled so the
/// demand-to-capacity ratio matches the paper.
pub fn run_synthetic_experiment(args: &Args) -> SyntheticOutcome {
    run_synthetic_experiment_with_obs(args, fuxi_sim::TracerConfig::default())
}

/// [`run_synthetic_experiment`] with an explicit tracer configuration —
/// `bench_snapshot` runs the experiment twice (tracing on / off) to bound
/// the observability overhead on the Figure 9 decision path.
pub fn run_synthetic_experiment_with_obs(
    args: &Args,
    obs: fuxi_sim::TracerConfig,
) -> SyntheticOutcome {
    run_synthetic_experiment_with_plane(args, obs, fuxi_sim::obs::MetricsPlaneConfig::default())
}

/// [`run_synthetic_experiment`] with explicit tracer *and* metrics-plane
/// configuration. `plane.enabled = false` turns off the master rollup,
/// report ingestion, and the agent/JobMaster report senders together —
/// the plane-on vs plane-off overhead comparison flips exactly this.
pub fn run_synthetic_experiment_with_plane(
    args: &Args,
    obs: fuxi_sim::TracerConfig,
    plane: fuxi_sim::obs::MetricsPlaneConfig,
) -> SyntheticOutcome {
    let machines = ((5000.0 * args.scale).round() as usize).max(20);
    let concurrent = ((1000.0 * args.scale).round() as usize).max(4);
    let mut cfg = ClusterConfig {
        n_machines: machines,
        rack_size: 50,
        machine_spec: synthetic_machine_spec(),
        seed: args.seed,
        obs,
        ..ClusterConfig::default()
    };
    cfg.agent.report_metrics = plane.enabled;
    cfg.jm.report_metrics = plane.enabled;
    cfg.master.metrics = plane;
    let mut cluster = Cluster::new(cfg);
    // Large jobs saturate the scaled cluster exactly as in the paper; cap
    // the per-job worker count so thousands of jobs share the cluster.
    let mut mix = SyntheticMix::new(args.seed, 1.0);
    let stats = fuxi_cluster::scenario::run_synthetic(
        &mut cluster,
        &mut mix,
        concurrent,
        SimDuration::from_secs(args.duration_s),
    );
    SyntheticOutcome {
        cluster,
        stats,
        machines,
        concurrent,
        duration_s: args.duration_s,
    }
}

/// Formats a paper-vs-measured row.
pub fn row(label: &str, paper: &str, measured: &str) -> Vec<String> {
    vec![label.to_owned(), paper.to_owned(), measured.to_owned()]
}

/// Shared engine setups for the Figure 9 scheduling micro-benchmarks, used
/// by both the criterion benches and the `bench_snapshot` baseline binary.
pub mod scenarios {
    use fuxi_core::quota::QuotaManager;
    use fuxi_core::scheduler::{Engine, EngineConfig};
    use fuxi_proto::request::{RequestDelta, ScheduleUnitDef};
    use fuxi_proto::topology::{MachineSpec, TopologyBuilder};
    use fuxi_proto::{AppId, Priority, QuotaGroupId, ResourceVec, UnitId};

    /// The benchmark schedule unit: {0.5 CPU, 2 GB} — the paper's
    /// "{2CPU, 10GB} frees up" example scaled to pack 48 per machine.
    pub fn sched_unit() -> ResourceVec {
        ResourceVec::new(500, 2048)
    }

    fn build(n_racks: usize, per_rack: usize, cores: u64, reference: bool) -> Engine {
        let topo = TopologyBuilder::new()
            .uniform(n_racks, per_rack, MachineSpec {
                resources: ResourceVec::cores_mb(cores, 96 * 1024),
                ..MachineSpec::default()
            })
            .build();
        // Preemption off: these benches time the waiting-queue decision, and
        // app 0's urgency would otherwise evict the whole cluster at setup.
        let cfg = EngineConfig {
            enable_priority_preemption: false,
            enable_quota_preemption: false,
            reference_mode: reference,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(topo, cfg, QuotaManager::new());
        let unit = sched_unit();
        let machines = (n_racks * per_rack) as u64;
        // Demand = 2× the 48-units-per-machine capacity, spread over 1,000
        // apps; app 0 is the most urgent waiter with unbounded demand.
        let per_app = (machines * 48 * 2 / 1000).max(1);
        for a in 0..1000u32 {
            let prio = if a == 0 { Priority(1) } else { Priority(1000) };
            e.attach_app(
                AppId(a),
                QuotaGroupId(0),
                vec![ScheduleUnitDef::new(UnitId(0), prio, unit.clone())],
            );
            let want = if a == 0 { 1_000_000 } else { per_app as i64 };
            e.apply_deltas(AppId(a), &[RequestDelta::cluster(UnitId(0), want)]);
        }
        e.drain_events();
        e
    }

    /// Exactly-full cluster: 24-core/96 GB machines where 48 × {0.5 CPU,
    /// 2 GB} units exhaust CPU and memory simultaneously. Every machine ends
    /// with zero free in both dimensions; the hot path is the return →
    /// decide → grant cycle.
    pub fn saturated_engine(n_racks: usize, per_rack: usize, reference: bool) -> Engine {
        build(n_racks, per_rack, 24, reference)
    }

    /// Fragmented saturation: 32-core/96 GB machines where memory exhausts
    /// after 48 units, stranding 8 CPU cores free on every machine. All
    /// machines stay nonempty but the unit never fits anywhere — the
    /// worst case for a naive free-machine scan (it walks its full
    /// `max_cluster_scan` budget and finds nothing) and the best case for
    /// the hierarchical fit index (one root rejection).
    pub fn fragmented_engine(n_racks: usize, per_rack: usize, reference: bool) -> Engine {
        build(n_racks, per_rack, 32, reference)
    }
}

/// End-to-end kernel throughput: a cluster-sized world where a driver keeps
/// a window of jobs in flight over per-machine worker actors. Each job is
/// one submit delivery, one runtime timer, and one completion delivery, so
/// the scenario exercises exactly the event-queue hot path (pushes from
/// three sites, same-tick ties, far-future timers) with trivial handlers —
/// wall time measures the kernel, not the workload.
pub mod sim_storm {
    use fuxi_sim::{
        Actor, ActorId, Ctx, KernelMsg, QueueKernel, SimDuration, SimTime, TracerConfig, World,
        WorldConfig,
    };
    use std::cell::Cell;
    use std::rc::Rc;

    #[derive(Debug)]
    enum StormMsg {
        Submit { job: u64 },
        Done,
        Flow,
    }

    impl KernelMsg for StormMsg {
        fn flow_done(_tag: u64, _failed: bool) -> Self {
            StormMsg::Flow
        }
    }

    /// Runs one job per `Submit`: a deterministic-duration timer, then a
    /// completion back to the driver.
    struct Worker {
        driver: ActorId,
    }

    impl Actor<StormMsg> for Worker {
        fn on_message(&mut self, ctx: &mut Ctx<'_, StormMsg>, from: ActorId, msg: StormMsg) {
            if let StormMsg::Submit { job } = msg {
                self.driver = from;
                // Job runtimes 1–200 ms, scattered deterministically so
                // completions land across many ticks (and frequently tie).
                ctx.timer(SimDuration::from_millis(1 + job.wrapping_mul(7919) % 200), job);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, StormMsg>, _tag: u64) {
            ctx.send(self.driver, StormMsg::Done);
        }
    }

    /// Dispatches `total` jobs round-robin over the workers, keeping at
    /// most `window` in flight.
    struct Driver {
        workers: Vec<ActorId>,
        next_job: u64,
        total: u64,
        window: u64,
        done: Rc<Cell<u64>>,
    }

    impl Driver {
        fn dispatch(&mut self, ctx: &mut Ctx<'_, StormMsg>) {
            let job = self.next_job;
            self.next_job += 1;
            let to = self.workers[(job % self.workers.len() as u64) as usize];
            ctx.send(to, StormMsg::Submit { job });
        }
    }

    impl Actor<StormMsg> for Driver {
        fn on_start(&mut self, ctx: &mut Ctx<'_, StormMsg>) {
            for _ in 0..self.window.min(self.total) {
                self.dispatch(ctx);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, StormMsg>, _from: ActorId, msg: StormMsg) {
            if let StormMsg::Done = msg {
                self.done.set(self.done.get() + 1);
                if self.next_job < self.total {
                    self.dispatch(ctx);
                }
            }
        }
    }

    /// Outcome of one storm run.
    pub struct StormStats {
        pub machines: usize,
        pub jobs: u64,
        /// Kernel events dispatched (deliveries + timers).
        pub events: u64,
        pub wall_s: f64,
        pub events_per_sec: f64,
    }

    /// Runs `jobs` jobs over `machines` worker actors on the given kernel
    /// and measures wall-clock event throughput. Panics if any job is lost.
    pub fn run_event_storm(machines: usize, jobs: u64, kernel: QueueKernel, seed: u64) -> StormStats {
        let mut cfg = WorldConfig::uniform(machines, 50, seed);
        cfg.kernel = kernel;
        cfg.obs = TracerConfig {
            enabled: false,
            ..TracerConfig::default()
        };
        let mut world: World<StormMsg> = World::new(cfg);
        let workers: Vec<ActorId> = (0..machines)
            .map(|m| {
                world.spawn(
                    Some(m as u32),
                    Box::new(Worker {
                        driver: ActorId::NONE,
                    }),
                )
            })
            .collect();
        let done = Rc::new(Cell::new(0u64));
        world.spawn(
            None,
            Box::new(Driver {
                workers,
                next_job: 0,
                total: jobs,
                window: 2_000,
                done: Rc::clone(&done),
            }),
        );
        let t0 = std::time::Instant::now();
        world.run_until(SimTime::MAX);
        let wall_s = t0.elapsed().as_secs_f64();
        assert_eq!(done.get(), jobs, "all jobs must complete");
        let events = world.events_processed();
        StormStats {
            machines,
            jobs,
            events,
            wall_s,
            events_per_sec: events as f64 / wall_s.max(1e-9),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_storm_completes_and_counts() {
        let s = sim_storm::run_event_storm(100, 2_000, fuxi_sim::QueueKernel::Calendar, 42);
        // ≥3 events per job: submit delivery, runtime timer, completion.
        assert!(s.events >= 3 * s.jobs, "{} events for {} jobs", s.events, s.jobs);
        let h = sim_storm::run_event_storm(100, 2_000, fuxi_sim::QueueKernel::Heap, 42);
        assert_eq!(s.events, h.events, "kernels must process identical schedules");
    }

    #[test]
    fn synthetic_experiment_smoke() {
        // A tiny run must produce scheduling-time samples and utilization
        // series — the raw material of Fig 9 / Fig 10 / Table 2.
        let args = Args {
            scale: 0.005, // 25 machines, 5 concurrent jobs
            duration_s: 120,
            seed: 7,
            trace_out: None,
        };
        let out = run_synthetic_experiment(&args);
        let m = out.cluster.world.metrics();
        assert!(m.histogram("fm.sched_s").map(|h| h.count()).unwrap_or(0) > 10);
        assert!(!m.series("fm.planned_mem_mb").is_empty());
        assert!(!m.series("am.obtained_mem_mb").is_empty());
        assert!(out.stats.jobs_submitted >= 5);
    }
}
