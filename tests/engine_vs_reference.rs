//! Differential property tests for the scheduling engine's hierarchical fit
//! index and reverse allocation index (PR: fit-indexed free pool).
//!
//! The indexed engine (`reference_mode: false`) prunes racks via
//! component-wise max-free aggregates and resolves machine-down victims via
//! the reverse allocation index. The reference engine (`reference_mode:
//! true`) uses the naive flat scans. Both must emit **bit-identical event
//! streams** for any operation sequence — the index changes the *cost* of a
//! decision, never its *outcome*. Scan-budget parity (pruned racks charge
//! their skipped machine count against `max_cluster_scan`) is what makes
//! exact equality — not just multiset equality — hold even when the budget
//! truncates a scan, so small budgets are part of the generated input.

use fuxi::core::quota::QuotaManager;
use fuxi::core::scheduler::{Engine, EngineConfig, MASTER_UNIT};
use fuxi::proto::request::{RequestDelta, ScheduleUnitDef};
use fuxi::proto::topology::{MachineSpec, TopologyBuilder};
use fuxi::proto::{AppId, MachineId, Priority, QuotaGroupId, RackId, ResourceVec, UnitId};
use proptest::prelude::*;
use std::collections::BTreeSet;

const N_RACKS: u32 = 3;
const PER_RACK: u32 = 3;
const N_MACHINES: u32 = N_RACKS * PER_RACK;
const N_APPS: u32 = 4;

/// One container: {1 core, 2 GB} — four fit on a stock 4-core machine.
fn unit_res() -> ResourceVec {
    ResourceVec::new(1000, 2048)
}

fn machine_spec(cores: u64) -> MachineSpec {
    MachineSpec {
        resources: ResourceVec::cores_mb(cores, 16 * 1024),
        ..MachineSpec::default()
    }
}

/// Builds the indexed engine and its naive reference twin: identical
/// topology, apps and config except for `reference_mode`.
fn engine_pair(max_cluster_scan: usize) -> (Engine, Engine) {
    let mk = |reference_mode: bool| {
        let topo = TopologyBuilder::new()
            .uniform(N_RACKS as usize, PER_RACK as usize, machine_spec(4))
            .build();
        let cfg = EngineConfig {
            max_cluster_scan,
            reference_mode,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(topo, cfg, QuotaManager::new());
        for a in 0..N_APPS {
            e.attach_app(
                AppId(a),
                QuotaGroupId(0),
                vec![ScheduleUnitDef::new(
                    UnitId(0),
                    Priority(100 + 200 * a as u16),
                    unit_res(),
                )],
            );
        }
        e.drain_events();
        e
    };
    (mk(false), mk(true))
}

/// Raw generated operation: `(kind, a, b, d, p)` decoded by [`apply_op`].
/// Kept as a tuple because the proptest shim has no `prop_oneof`.
type RawOp = (u8, u32, u32, i64, u16);

fn arb_op() -> impl Strategy<Value = RawOp> {
    (0u8..8, 0u32..64, 0u32..64, -4i64..12, 0u16..4)
}

/// Applies one decoded operation to an engine. Must be bit-for-bit
/// deterministic given the engine state — both twins run exactly this.
fn apply_op(e: &mut Engine, op: RawOp) {
    let (kind, a, b, d, p) = op;
    let app = AppId(a % N_APPS);
    let m = MachineId(b % N_MACHINES);
    match kind % 8 {
        // Cluster-level demand change.
        0 => e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), d)]),
        // Machine-level demand change.
        1 => e.apply_deltas(
            app,
            &[RequestDelta {
                unit: UnitId(0),
                machine: vec![(m, d)],
                rack: Vec::new(),
                cluster: 0,
                avoid_add: Vec::new(),
                avoid_remove: Vec::new(),
            }],
        ),
        // Rack-level demand change, plus avoid-list churn.
        2 => e.apply_deltas(
            app,
            &[RequestDelta {
                unit: UnitId(0),
                machine: Vec::new(),
                rack: vec![(RackId(b % N_RACKS), d)],
                cluster: 0,
                avoid_add: if p == 0 { vec![m] } else { Vec::new() },
                avoid_remove: if p == 1 { vec![m] } else { Vec::new() },
            }],
        ),
        // A container finishes and its resources turn over.
        3 => e.return_grant(app, UnitId(0), m, 1 + d.unsigned_abs() % 3),
        // Machine failure: every grant on it is revoked (reverse-index path
        // vs all-apps scan in the reference).
        4 => e.node_down(m),
        // Machine (re)join, sometimes with a different shape (node flap —
        // exercises capacity clamping and index widening).
        5 => e.node_up(m, machine_spec(if p == 0 { 8 } else { 4 }).resources),
        // App restart: full revoke, then a fresh attach with a new
        // submit_seq and possibly different priority.
        6 => {
            e.detach_app(app);
            e.attach_app(
                app,
                QuotaGroupId(0),
                vec![ScheduleUnitDef::new(
                    UnitId(0),
                    Priority(100 + 100 * p),
                    unit_res(),
                )],
            );
        }
        // Master placement (first-fitting scan) + immediate release.
        _ => {
            let avoid: BTreeSet<MachineId> = if p == 0 { [m].into() } else { BTreeSet::new() };
            let res = ResourceVec::cores_mb(1, 1024);
            if let Some(placed) = e.grant_fixed(AppId(1000 + a), res, &avoid) {
                e.return_grant(AppId(1000 + a), MASTER_UNIT, placed, 1);
            }
        }
    }
}

/// One `app_grants` row: `(unit, machine, unit_resource, count)`.
type GrantRow = (UnitId, MachineId, ResourceVec, u64);

/// Grant books of every app as a comparable value.
fn grant_books(e: &Engine) -> Vec<(u32, Vec<GrantRow>)> {
    (0..N_APPS).map(|a| (a, e.app_grants(AppId(a)))).collect()
}

proptest! {
    /// Any operation stream: the indexed engine and the naive reference
    /// drain identical event streams after every step, and the indexed
    /// engine's internal indices stay consistent with its grant books.
    #[test]
    fn indexed_engine_matches_reference(
        ops in prop::collection::vec(arb_op(), 1..80),
    ) {
        let (mut indexed, mut reference) = engine_pair(2048);
        for (i, &op) in ops.iter().enumerate() {
            apply_op(&mut indexed, op);
            apply_op(&mut reference, op);
            let ei = indexed.drain_events();
            let er = reference.drain_events();
            prop_assert!(ei == er, "diverged at op {}: {:?}\n  indexed:   {:?}\n  reference: {:?}", i, op, ei, er);
            indexed.assert_index_consistent();
        }
        prop_assert_eq!(grant_books(&indexed), grant_books(&reference));
        for m in 0..N_MACHINES {
            prop_assert!(
                indexed.free_on(MachineId(m)) == reference.free_on(MachineId(m)),
                "free divergence on machine {}", m
            );
            prop_assert_eq!(
                indexed.allocations_on(MachineId(m)),
                reference.allocations_on(MachineId(m))
            );
        }
        prop_assert_eq!(indexed.planned(), reference.planned());
    }

    /// Same property under a tiny scan budget: pruned racks must charge
    /// their skipped machines against `max_cluster_scan` so both engines
    /// truncate (and rotate the cursor) at exactly the same point.
    #[test]
    fn budget_truncation_is_bit_identical(
        ops in prop::collection::vec(arb_op(), 1..60),
        budget in 1usize..7,
    ) {
        let (mut indexed, mut reference) = engine_pair(budget);
        for (i, &op) in ops.iter().enumerate() {
            apply_op(&mut indexed, op);
            apply_op(&mut reference, op);
            let ei = indexed.drain_events();
            let er = reference.drain_events();
            prop_assert!(
                ei == er,
                "diverged at op {} with budget {}: {:?}", i, budget, op
            );
            indexed.assert_index_consistent();
        }
        prop_assert_eq!(grant_books(&indexed), grant_books(&reference));
    }
}
