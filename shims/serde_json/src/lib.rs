//! Offline stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! `serde_json` entry points the workspace uses (`to_string`,
//! `to_string_pretty`, `to_vec`, `from_str`, `from_slice`) over the vendored
//! `serde` shim's [`Value`] tree: serialization renders the tree to JSON
//! text, deserialization parses JSON text back into a tree and hands it to
//! the type's `from_value`.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

// Real serde_json exposes its own `Value`; the shim's lives in the vendored
// serde crate, so re-export it for consumers that only depend on serde_json.
pub use serde::Value;

/// Error produced by JSON parsing or value conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..n {
                out.push_str("  ");
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that round-trips.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null"); // JSON has no NaN/Inf, same as serde_json
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                render(e, out, pretty, indent + 1);
            }
            if !a.is_empty() {
                pad(out, indent);
            }
            out.push(']');
        }
        Value::Object(o) => {
            out.push('{');
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                render(e, out, pretty, indent + 1);
            }
            if !o.is_empty() {
                pad(out, indent);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serializes `value` to human-indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

/// Serializes `value` to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error(format!("{msg} at byte {}", self.pos)))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            self.err(&format!("expected `{kw}`"))
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let mut float = false;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return self.err("unterminated string");
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return self.err("unterminated escape");
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole character.
                    let s = &self.bytes[self.pos - 1..];
                    let ch_len = utf8_len(b);
                    if ch_len == 1 {
                        out.push(b as char);
                    } else {
                        if s.len() < ch_len {
                            return self.err("truncated utf-8");
                        }
                        let ch = std::str::from_utf8(&s[..ch_len])
                            .map_err(|_| Error("invalid utf-8".into()))?;
                        out.push_str(ch);
                        self.pos += ch_len - 1;
                    }
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }
}

/// Parses JSON text into a raw [`Value`] tree.
pub fn value_from_str(s: &str) -> Result<Value> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after JSON value");
    }
    Ok(v)
}

/// Deserializes a value of type `T` from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let v = value_from_str(s)?;
    T::from_value(&v).map_err(Error::from)
}

/// Deserializes a value of type `T` from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error("invalid utf-8".into()))?;
    from_str(s)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_parses_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<f64>("1.5e2").unwrap(), 150.0);
        assert_eq!(from_str::<String>(r#""aAb""#).unwrap(), "aAb");
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123456.789] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f);
        }
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        // `1.0` must not render as `1`, or a round-trip through text would
        // change the Value variant for types that care.
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn collections_roundtrip() {
        let v: Vec<u32> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u32>("{nope").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(value_from_str(r#"{"a": }"#).is_err());
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&s).unwrap(), v);
    }
}
