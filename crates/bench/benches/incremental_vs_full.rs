//! Criterion ablation: the incremental resource-management protocol vs.
//! repeated full-state assertion (the paper's core §3.1 claim: "the
//! protocol saves an application from repetitively asserting full resource
//! demands, and thus significantly reduces the communication and message
//! processing overhead").
//!
//! Both sides process the same logical demand change on a saturated
//! 1,000-machine engine; the incremental side sends one ±1 delta, the
//! full-state side re-sends (and the master re-processes) the complete
//! request state — exactly what YARN-era AMs do every heartbeat.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuxi_core::quota::QuotaManager;
use fuxi_core::scheduler::{Engine, EngineConfig};
use fuxi_proto::request::{RequestDelta, RequestState, ScheduleUnitDef};
use fuxi_proto::topology::{MachineSpec, TopologyBuilder};
use fuxi_proto::{AppId, Priority, QuotaGroupId, ResourceVec, UnitId};

fn engine(apps: u32, want_per_app: i64) -> Engine {
    let topo = TopologyBuilder::new()
        .uniform(20, 50, MachineSpec {
            resources: ResourceVec::cores_mb(24, 96 * 1024),
            ..MachineSpec::default()
        })
        .build();
    let mut e = Engine::new(topo, EngineConfig::default(), QuotaManager::new());
    let unit = ResourceVec::new(500, 2048);
    for a in 0..apps {
        e.attach_app(
            AppId(a),
            QuotaGroupId(0),
            vec![ScheduleUnitDef::new(UnitId(0), Priority(1000), unit.clone())],
        );
        e.apply_deltas(AppId(a), &[RequestDelta::cluster(UnitId(0), want_per_app)]);
    }
    e.drain_events();
    e
}

fn full_state_of(e: &Engine, _app: AppId, outstanding: u64) -> RequestState {
    let _ = e;
    let mut st = RequestState::new(ScheduleUnitDef::new(
        UnitId(0),
        Priority(1000),
        ResourceVec::new(500, 2048),
    ));
    st.wants.add_cluster(outstanding as i64);
    st
}

fn bench(c: &mut Criterion) {
    // 200 apps × 600 wants vs 48k slots: saturated with deep queues.
    c.bench_function("incremental_one_delta", |b| {
        let mut e = engine(200, 600);
        let mut i = 0u32;
        b.iter(|| {
            let app = AppId(i % 200);
            i += 1;
            e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), 1)]);
            e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), -1)]);
            e.drain_events();
        });
    });

    c.bench_function("full_state_reassertion", |b| {
        let mut e = engine(200, 600);
        let mut i = 0u32;
        b.iter(|| {
            let app = AppId(i % 200);
            i += 1;
            // The same ±1 logical change expressed the YARN way: the AM
            // re-sends its entire outstanding ask and the master replaces
            // its view wholesale.
            let outstanding = e.unit_outstanding(app, UnitId(0));
            let st = full_state_of(&e, app, outstanding + 1);
            e.full_request_sync(
                app,
                QuotaGroupId(0),
                vec![st.def.clone()],
                vec![st],
            );
            let st = full_state_of(&e, app, outstanding);
            e.full_request_sync(
                app,
                QuotaGroupId(0),
                vec![st.def.clone()],
                vec![st],
            );
            e.drain_events();
        });
    });

    c.bench_function("return_grant_turnover", |b| {
        // §3.3: freed resources turn over to waiting apps immediately.
        let mut e = engine(200, 600);
        let mut i = 0u32;
        b.iter(|| {
            let app = AppId(i % 200);
            i += 1;
            if let Some((unit, m, _, _)) = e.app_grants(app).first().cloned() {
                e.return_grant(app, unit, m, 1);
            }
            black_box(e.drain_events());
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
