//! Task graph analysis: wiring pipes into a DAG, cycle detection, and
//! readiness tracking ("the JobMaster firstly parses the job description
//! and analyzes the shuffle pipes to figure out the task topological order.
//! Each time only the tasks whose input data are ready can be scheduled",
//! Section 4.4).

use crate::desc::JobDesc;
use fuxi_proto::TaskId;
use std::collections::{BTreeMap, BTreeSet};

/// One node of the task graph.
#[derive(Debug, Clone)]
pub struct TaskNode {
    /// Task id (dense, stable for the job's lifetime).
    pub id: TaskId,
    /// Task name from the job description.
    pub name: String,
    /// Tasks whose output this task consumes.
    pub upstream: Vec<TaskId>,
    /// Tasks consuming this task's output.
    pub downstream: Vec<TaskId>,
    /// DFS input patterns feeding this task.
    pub input_files: Vec<String>,
    /// DFS outputs this task writes.
    pub output_files: Vec<String>,
}

/// The analyzed DAG.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    /// Task nodes, indexed by `TaskId`.
    pub nodes: Vec<TaskNode>,
    by_name: BTreeMap<String, TaskId>,
}

impl TaskGraph {
    /// Builds and validates the graph.
    pub fn build(desc: &JobDesc) -> Result<TaskGraph, String> {
        if desc.tasks.is_empty() {
            return Err("job has no tasks".into());
        }
        let mut by_name = BTreeMap::new();
        let mut nodes: Vec<TaskNode> = desc
            .tasks
            .keys()
            .enumerate()
            .map(|(i, name)| {
                let id = TaskId(i as u32);
                by_name.insert(name.clone(), id);
                TaskNode {
                    id,
                    name: name.clone(),
                    upstream: Vec::new(),
                    downstream: Vec::new(),
                    input_files: Vec::new(),
                    output_files: Vec::new(),
                }
            })
            .collect();
        for (i, pipe) in desc.pipes.iter().enumerate() {
            let src_task = pipe
                .source
                .task_name()
                .map(|n| {
                    by_name
                        .get(n)
                        .copied()
                        .ok_or_else(|| format!("pipe {i}: unknown source task {n}"))
                })
                .transpose()?;
            let dst_task = pipe
                .destination
                .task_name()
                .map(|n| {
                    by_name
                        .get(n)
                        .copied()
                        .ok_or_else(|| format!("pipe {i}: unknown destination task {n}"))
                })
                .transpose()?;
            match (src_task, dst_task) {
                (Some(s), Some(d)) => {
                    if s == d {
                        return Err(format!("pipe {i}: self-loop on task {s}"));
                    }
                    if !nodes[d.0 as usize].upstream.contains(&s) {
                        nodes[d.0 as usize].upstream.push(s);
                        nodes[s.0 as usize].downstream.push(d);
                    }
                }
                (None, Some(d)) => {
                    let f = pipe
                        .source
                        .file_pattern
                        .clone()
                        .ok_or_else(|| format!("pipe {i}: source has neither file nor task"))?;
                    nodes[d.0 as usize].input_files.push(f);
                }
                (Some(s), None) => {
                    let f = pipe
                        .destination
                        .file_pattern
                        .clone()
                        .ok_or_else(|| format!("pipe {i}: destination has neither file nor task"))?;
                    nodes[s.0 as usize].output_files.push(f);
                }
                (None, None) => {
                    return Err(format!("pipe {i}: connects no tasks"));
                }
            }
        }
        let graph = TaskGraph { nodes, by_name };
        graph.topo_order()?; // rejects cycles
        Ok(graph)
    }

    /// Task id.
    pub fn task(&self, id: TaskId) -> &TaskNode {
        &self.nodes[id.0 as usize]
    }

    /// By name.
    pub fn by_name(&self, name: &str) -> Option<TaskId> {
        self.by_name.get(name).copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Kahn topological order; `Err` on a cycle.
    pub fn topo_order(&self) -> Result<Vec<TaskId>, String> {
        let mut indeg: Vec<usize> = self.nodes.iter().map(|n| n.upstream.len()).collect();
        let mut ready: Vec<TaskId> = self
            .nodes
            .iter()
            .filter(|n| n.upstream.is_empty())
            .map(|n| n.id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(t) = ready.pop() {
            order.push(t);
            for &d in &self.nodes[t.0 as usize].downstream {
                indeg[d.0 as usize] -= 1;
                if indeg[d.0 as usize] == 0 {
                    ready.push(d);
                }
            }
        }
        if order.len() != self.nodes.len() {
            return Err("job DAG contains a cycle".into());
        }
        Ok(order)
    }

    /// Tasks whose every upstream is in `finished` and which are not yet in
    /// `started` — the next wave to schedule.
    pub fn ready_tasks(&self, finished: &BTreeSet<TaskId>, started: &BTreeSet<TaskId>) -> Vec<TaskId> {
        self.nodes
            .iter()
            .filter(|n| {
                !started.contains(&n.id)
                    && !finished.contains(&n.id)
                    && n.upstream.iter().all(|u| finished.contains(u))
            })
            .map(|n| n.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::desc::{Endpoint, JobDesc, PipeDesc, TaskDesc};

    fn pipe(src: Endpoint, dst: Endpoint) -> PipeDesc {
        PipeDesc {
            source: src,
            destination: dst,
        }
    }

    fn ap(s: &str) -> Endpoint {
        Endpoint {
            access_point: Some(s.to_owned()),
            file_pattern: None,
        }
    }

    fn file(s: &str) -> Endpoint {
        Endpoint {
            file_pattern: Some(s.to_owned()),
            access_point: None,
        }
    }

    fn diamond() -> JobDesc {
        // Figure 6: T1 -> {T2, T3} -> T4.
        let mut tasks = std::collections::BTreeMap::new();
        for n in ["T1", "T2", "T3", "T4"] {
            tasks.insert(n.to_owned(), TaskDesc::synthetic(2, 1.0));
        }
        JobDesc {
            tasks,
            pipes: vec![
                pipe(file("pangu://in/*"), ap("T1:input")),
                pipe(ap("T1:toT2"), ap("T2:fromT1")),
                pipe(ap("T1:toT3"), ap("T3:fromT1")),
                pipe(ap("T2:toT4"), ap("T4:fromT2")),
                pipe(ap("T3:toT4"), ap("T4:fromT3")),
                pipe(ap("T4:out"), file("pangu://out")),
            ],
        }
    }

    #[test]
    fn builds_figure6_diamond() {
        let g = TaskGraph::build(&diamond()).unwrap();
        assert_eq!(g.len(), 4);
        let t1 = g.by_name("T1").unwrap();
        let t4 = g.by_name("T4").unwrap();
        assert!(g.task(t1).upstream.is_empty());
        assert_eq!(g.task(t1).input_files, vec!["pangu://in/*"]);
        assert_eq!(g.task(t1).downstream.len(), 2);
        assert_eq!(g.task(t4).upstream.len(), 2);
        assert_eq!(g.task(t4).output_files, vec!["pangu://out"]);
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let g = TaskGraph::build(&diamond()).unwrap();
        let order = g.topo_order().unwrap();
        let pos = |n: &str| order.iter().position(|&t| t == g.by_name(n).unwrap()).unwrap();
        assert!(pos("T1") < pos("T2"));
        assert!(pos("T1") < pos("T3"));
        assert!(pos("T2") < pos("T4"));
        assert!(pos("T3") < pos("T4"));
    }

    #[test]
    fn ready_tasks_advance_in_waves() {
        let g = TaskGraph::build(&diamond()).unwrap();
        let mut finished = BTreeSet::new();
        let started = BTreeSet::new();
        let t1 = g.by_name("T1").unwrap();
        assert_eq!(g.ready_tasks(&finished, &started), vec![t1]);
        finished.insert(t1);
        let wave2 = g.ready_tasks(&finished, &started);
        assert_eq!(wave2.len(), 2);
        finished.insert(g.by_name("T2").unwrap());
        assert_eq!(
            g.ready_tasks(&finished, &started),
            vec![g.by_name("T3").unwrap()],
            "T4 still blocked on T3"
        );
        finished.insert(g.by_name("T3").unwrap());
        assert_eq!(g.ready_tasks(&finished, &started), vec![g.by_name("T4").unwrap()]);
    }

    #[test]
    fn detects_cycles() {
        let mut d = diamond();
        d.pipes.push(pipe(ap("T4:back"), ap("T1:loop")));
        assert!(TaskGraph::build(&d).unwrap_err().contains("cycle"));
    }

    #[test]
    fn rejects_unknown_task_and_self_loop() {
        let mut d = diamond();
        d.pipes.push(pipe(ap("T9:x"), ap("T1:y")));
        assert!(TaskGraph::build(&d).unwrap_err().contains("unknown source"));
        let mut d = diamond();
        d.pipes.push(pipe(ap("T1:a"), ap("T1:b")));
        assert!(TaskGraph::build(&d).unwrap_err().contains("self-loop"));
    }

    #[test]
    fn rejects_empty_job_and_empty_pipe() {
        let d = JobDesc {
            tasks: Default::default(),
            pipes: vec![],
        };
        assert!(TaskGraph::build(&d).is_err());
        let mut d = diamond();
        d.pipes.push(PipeDesc {
            source: Endpoint::default(),
            destination: Endpoint::default(),
        });
        assert!(TaskGraph::build(&d).unwrap_err().contains("connects no tasks"));
    }
}
