//! Live-runtime throughput benchmark: stands up a full Fuxi stack on OS
//! threads (`fuxi-rt`), streams synthetic jobs through it, kills the
//! primary FuxiMaster mid-run, and writes `BENCH_live.json` with
//! jobs/sec, messages/sec, and scheduling-decision latency percentiles.
//!
//! Usage:
//! ```text
//! cargo run --release -p fuxi-bench --bin bench_live -- \
//!     [--machines 200] [--jobs 1000] [--seed 2014] [--concurrent 64] \
//!     [--timeout 600] [--out BENCH_live.json] [--no-kill] \
//!     [--serve 127.0.0.1:9464] [--snapshot-out BENCH_live_view.json]
//! ```
//!
//! `--serve` exposes the live cluster view over HTTP mid-run (`/metrics`
//! Prometheus text, `/json`) for scraping and `fuxitop`. The output JSON
//! embeds three cluster-view summaries — pre-kill, during failover, and
//! post-recovery — and the final full view is written to
//! `--snapshot-out`.
//!
//! Exits non-zero when the run does not complete every job, when the
//! standby fails to take over after the master kill, when the kill raises
//! no SLO alert (the 4 s pending-age rule must trip during the grant
//! stall), or on any actor panic (propagated at shutdown).

use fuxi_cluster::{ClusterConfig, SubmitOpts};
use fuxi_core::master::MasterConfig;
use fuxi_rt::LiveCluster;
use fuxi_sim::SimDuration;
use fuxi_workloads::mapreduce::{wordcount_job, MapReduceParams};
use std::time::{Duration, Instant};

struct LiveArgs {
    machines: usize,
    jobs: usize,
    seed: u64,
    concurrent: usize,
    timeout_s: u64,
    out: String,
    kill_master: bool,
    serve: Option<String>,
    snapshot_out: String,
}

fn parse_args() -> LiveArgs {
    let mut a = LiveArgs {
        machines: 200,
        jobs: 1000,
        seed: 2014,
        concurrent: 64,
        timeout_s: 600,
        out: "BENCH_live.json".to_owned(),
        kill_master: true,
        serve: None,
        snapshot_out: "BENCH_live_view.json".to_owned(),
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        let num = |j: usize| argv.get(j).and_then(|v| v.parse::<u64>().ok());
        match argv[i].as_str() {
            "--machines" => {
                a.machines = num(i + 1).map_or(a.machines, |v| v as usize);
                i += 2;
            }
            "--jobs" => {
                a.jobs = num(i + 1).map_or(a.jobs, |v| v as usize);
                i += 2;
            }
            "--seed" => {
                a.seed = num(i + 1).unwrap_or(a.seed);
                i += 2;
            }
            "--concurrent" => {
                a.concurrent = num(i + 1).map_or(a.concurrent, |v| v as usize);
                i += 2;
            }
            "--timeout" => {
                a.timeout_s = num(i + 1).unwrap_or(a.timeout_s);
                i += 2;
            }
            "--out" => {
                a.out = argv.get(i + 1).cloned().unwrap_or(a.out);
                i += 2;
            }
            "--no-kill" => {
                a.kill_master = false;
                i += 1;
            }
            "--serve" => {
                a.serve = argv.get(i + 1).cloned();
                i += 2;
            }
            "--snapshot-out" => {
                a.snapshot_out = argv.get(i + 1).cloned().unwrap_or(a.snapshot_out);
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other}");
                i += 1;
            }
        }
    }
    a
}

/// A small job so a thousand of them finish in CI time: 6 maps, 2
/// reduces, ~60 ms instances, a few MB of binary to keep the package
/// flow path exercised without dominating wall time.
fn live_job(seed: u64, i: usize) -> fuxi_job::JobDesc {
    wordcount_job(&MapReduceParams {
        maps: 6,
        reduces: 2,
        map_duration_s: 0.06,
        reduce_duration_s: 0.06,
        jitter: 0.2,
        max_workers: 4,
        binary_mb: 4.0,
        map_output_mb: 1.0,
        output_file: Some(format!("pangu://live/out-{seed}-{i}")),
        ..Default::default()
    })
}

fn main() {
    fuxi_bench::warn_if_debug();
    let args = parse_args();
    // Short lease so the standby takes over within a few seconds of the
    // live master kill (defaults are tuned for simulated hours) — but not
    // so short that scheduling hiccups on an oversubscribed CI host cost
    // the primary its lease before the scripted kill: a spurious
    // self-fence leaves no standby for the real one.
    let mut master = MasterConfig {
        lease_ttl: SimDuration::from_secs_f64(3.0),
        keepalive_interval: SimDuration::from_secs_f64(1.0),
        ..MasterConfig::default()
    };
    // A master kill stalls granting for lease-loss (~3 s) + the 8 s
    // rebuild window; a 4 s pending-age SLO turns that stall into a
    // watchdog alert the run can assert on.
    master.metrics.rules.pending_age_s = 4.0;
    let mut c = LiveCluster::new(ClusterConfig {
        n_machines: args.machines,
        rack_size: 50.min(args.machines.max(1)),
        seed: args.seed,
        master,
        standby_master: true,
        ..ClusterConfig::default()
    });
    eprintln!(
        "bench_live: {} machines, {} jobs ({} in flight), master kill: {}",
        args.machines, args.jobs, args.concurrent, args.kill_master
    );
    if let Some(addr) = &args.serve {
        let bound = c.serve_metrics(addr).expect("bind scrape endpoint");
        eprintln!("bench_live: serving http://{bound}/metrics and http://{bound}/json");
    }

    let start = Instant::now();
    let deadline = start + Duration::from_secs(args.timeout_s);
    let mut submitted = 0usize;
    let kill_at = args.jobs / 4; // kill once the pipeline is warm
    let mut killed_master = None;
    let mut failover_recovered = !args.kill_master;
    let mut timed_out = false;
    // Cluster-view snapshots bracketing the failover: just before the
    // kill, when the standby takes over (mid-rebuild, granting still
    // stalled), and after the run drains.
    let mut view_pre_kill = None;
    let mut view_during_failover = None;

    while c.finished_count() < args.jobs {
        while submitted < args.jobs && submitted - c.finished_count() < args.concurrent {
            let desc = live_job(args.seed, submitted);
            c.submit(&desc, &SubmitOpts::default());
            submitted += 1;
        }
        if args.kill_master && killed_master.is_none() && c.finished_count() >= kill_at {
            killed_master = c.current_master();
            if let Some(fm) = killed_master {
                eprintln!(
                    "bench_live: killing primary master a{} at {:.1}s ({} jobs done)",
                    fm.0,
                    start.elapsed().as_secs_f64(),
                    c.finished_count()
                );
                view_pre_kill = Some(c.hub.snapshot());
                c.kill_primary_master();
            }
        }
        if let Some(old) = killed_master {
            if !failover_recovered {
                if let Some(now_master) = c.current_master() {
                    if now_master != old {
                        eprintln!(
                            "bench_live: standby a{} took over at {:.1}s",
                            now_master.0,
                            start.elapsed().as_secs_f64()
                        );
                        failover_recovered = true;
                        view_during_failover = Some(c.hub.snapshot());
                    }
                }
            }
        }
        if Instant::now() > deadline {
            timed_out = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let all = c.all_jobs();
    let completed = all.iter().filter(|(_, s)| s.done.is_some()).count();
    let failed = all
        .iter()
        .filter(|(_, s)| matches!(s.done, Some((false, _, _))))
        .count();
    let view_post = c.hub.snapshot();
    let (metrics, _tracer) = c.shutdown();

    let msgs = metrics.counter("net.sent");
    let (p50, p99) = metrics
        .histogram("fm.sched_s")
        .map_or((0.0, 0.0), |h| (h.quantile(0.5), h.quantile(0.99)));
    let json = format!(
        concat!(
            "{{\n",
            "  \"machines\": {},\n  \"jobs\": {},\n  \"completed\": {},\n",
            "  \"failed\": {},\n  \"elapsed_s\": {:.3},\n",
            "  \"jobs_per_sec\": {:.3},\n  \"msgs_per_sec\": {:.1},\n",
            "  \"sched_p50_s\": {:.6},\n  \"sched_p99_s\": {:.6},\n",
            "  \"mailbox_hwm\": {},\n  \"mailbox_parked\": {},\n",
            "  \"master_killed\": {},\n  \"failover_recovered\": {},\n",
            "  \"slo_alerts_total\": {},\n",
            "  \"cluster_view\": {{\n",
            "    \"pre_kill\": {},\n",
            "    \"during_failover\": {},\n",
            "    \"post_recovery\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        args.machines,
        args.jobs,
        completed,
        failed,
        elapsed_s,
        completed as f64 / elapsed_s.max(1e-9),
        msgs as f64 / elapsed_s.max(1e-9),
        p50,
        p99,
        metrics.gauge("rt.mailbox_hwm"),
        metrics.counter("rt.mailbox_parked"),
        killed_master.is_some(),
        failover_recovered,
        view_post.alerts_total,
        view_pre_kill.as_ref().map_or("null".to_owned(), |v| v.summary_json()),
        view_during_failover.as_ref().map_or("null".to_owned(), |v| v.summary_json()),
        view_post.summary_json(),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_live.json");
    std::fs::write(&args.snapshot_out, view_post.to_json()).expect("write view snapshot");
    println!("{json}");
    eprintln!("bench_live: wrote {} and {}", args.out, args.snapshot_out);

    if timed_out {
        eprintln!(
            "bench_live: FAIL — timed out after {}s with {completed}/{} jobs done",
            args.timeout_s, args.jobs
        );
        std::process::exit(1);
    }
    if !failover_recovered {
        eprintln!("bench_live: FAIL — standby never took over after master kill");
        std::process::exit(1);
    }
    if completed < args.jobs {
        eprintln!("bench_live: FAIL — only {completed}/{} jobs completed", args.jobs);
        std::process::exit(1);
    }
    // The ~11 s grant stall (lease loss + rebuild) must have tripped the
    // 4 s pending-age SLO: a kill that raises no alert means the watchdog
    // or the report plane is broken.
    if killed_master.is_some() && view_post.alerts_total == 0 {
        eprintln!("bench_live: FAIL — master kill raised no SLO alert in the cluster view");
        std::process::exit(1);
    }
    if view_post.reports_received == 0 {
        eprintln!("bench_live: FAIL — master ingested zero metrics reports");
        std::process::exit(1);
    }
}
