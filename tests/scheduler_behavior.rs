//! Scheduler-behaviour integration tests: utilization under saturation,
//! quota preemption across tenants, the container-reuse ablation, and the
//! incremental protocol's message economy.

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::core::master::MasterConfig;
use fuxi::core::quota::QuotaGroup;
use fuxi::job::JobMasterConfig;
use fuxi::proto::topology::MachineSpec;
use fuxi::proto::{Priority, QuotaGroupId, ResourceVec};
use fuxi::sim::{SimDuration, SimTime};
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};

#[test]
fn saturated_cluster_reaches_high_planned_utilization() {
    // Demand far beyond capacity: planned utilization should approach 100%
    // (the Figure 10 claim at laboratory scale).
    let mut c = Cluster::new(ClusterConfig {
        n_machines: 20,
        rack_size: 5,
        machine_spec: MachineSpec {
            resources: ResourceVec::cores_mb(24, 96 * 1024),
            ..MachineSpec::default()
        },
        seed: 31,
        ..ClusterConfig::default()
    });
    // 20 machines × 48 units capacity = 960; ask for ~3000.
    for i in 0..6 {
        let desc = wordcount_job(&MapReduceParams {
            maps: 500,
            reduces: 10,
            map_duration_s: 120.0,
            reduce_duration_s: 30.0,
            jitter: 0.2,
            binary_mb: 60.0,
            ..Default::default()
        });
        c.submit(
            &desc,
            &SubmitOpts {
                priority: Priority(1000 + i),
                ..Default::default()
            },
        );
    }
    c.run_until(SimTime::from_secs(180));
    let m = c.world.metrics();
    let planned = m.series("fm.planned_mem_mb").last().map(|&(_, v)| v).unwrap_or(0.0);
    let total = m.series("fm.total_mem_mb").last().map(|&(_, v)| v).unwrap_or(1.0);
    let util = planned / total;
    assert!(util > 0.9, "planned utilization {util:.2} should exceed 90%");
}

#[test]
fn quota_preemption_reclaims_guaranteed_share_end_to_end() {
    let n = 10usize;
    let half = ResourceVec::cores_mb(12 * n as u64 / 2, 96 * 1024 * n as u64 / 2);
    let master = MasterConfig {
        quota_groups: vec![
            (QuotaGroupId(1), QuotaGroup { min: half.clone(), max: None }),
            (QuotaGroupId(2), QuotaGroup { min: half, max: None }),
        ],
        ..MasterConfig::default()
    };
    let mut c = Cluster::new(ClusterConfig {
        n_machines: n,
        rack_size: 5,
        seed: 32,
        master,
        ..ClusterConfig::default()
    });
    // Group 2 floods the idle cluster with long instances.
    let flood = wordcount_job(&MapReduceParams {
        maps: 400,
        reduces: 4,
        map_duration_s: 300.0,
        reduce_duration_s: 10.0,
        jitter: 0.1,
        max_workers: 300,
        binary_mb: 40.0,
        ..Default::default()
    });
    c.submit(
        &flood,
        &SubmitOpts {
            quota_group: QuotaGroupId(2),
            ..Default::default()
        },
    );
    c.run_for(SimDuration::from_secs(40));
    // Group 1 claims its guaranteed half; without preemption it would wait
    // ~300 s for the flood's instances to drain.
    let prod = wordcount_job(&MapReduceParams {
        maps: 60,
        reduces: 2,
        map_duration_s: 5.0,
        reduce_duration_s: 5.0,
        jitter: 0.1,
        binary_mb: 40.0,
        ..Default::default()
    });
    let p = c.submit(
        &prod,
        &SubmitOpts {
            quota_group: QuotaGroupId(1),
            ..Default::default()
        },
    );
    let (ok, at) = c
        .run_until_job_done(p, SimTime::from_secs(400))
        .expect("guaranteed-group job completes quickly");
    assert!(ok);
    let waited = at - 40.0;
    assert!(
        waited < 150.0,
        "quota preemption must beat the 300 s instance drain, took {waited:.0}s"
    );
}

#[test]
fn container_reuse_beats_per_task_containers() {
    // The Fuxi-vs-YARN ablation (§3.2.3): identical job, identical cluster;
    // only the container policy differs.
    let job = || {
        wordcount_job(&MapReduceParams {
            maps: 300,
            reduces: 4,
            map_duration_s: 1.0,
            reduce_duration_s: 1.0,
            jitter: 0.1,
            max_workers: 30,
            binary_mb: 200.0,
            ..Default::default()
        })
    };
    let run = |reuse: bool| -> (f64, u64, u64) {
        let jm = JobMasterConfig {
            container_reuse: reuse,
            // Every fresh worker process pays a startup cost (binary exec,
            // runtime init) before it can take tasks; reuse amortizes it.
            worker: fuxi::job::WorkerConfig {
                startup_overhead_s: 1.0,
                ..Default::default()
            },
            ..JobMasterConfig::default()
        };
        // The baseline is heartbeat-paced, like YARN's RM: allocations
        // happen on ~1 s rounds rather than per event.
        let master = MasterConfig {
            batch_interval: if reuse {
                MasterConfig::default().batch_interval
            } else {
                fuxi::sim::SimDuration::from_secs(1)
            },
            ..MasterConfig::default()
        };
        let mut c = Cluster::new(ClusterConfig {
            n_machines: 10,
            rack_size: 5,
            seed: 33,
            jm,
            master,
            ..ClusterConfig::default()
        });
        let j = c.submit(&job(), &SubmitOpts::default());
        let (ok, at) = c
            .run_until_job_done(j, SimTime::from_secs(4000))
            .expect("job finishes");
        assert!(ok);
        let m = c.world.metrics();
        (at, m.counter("jm.workers_requested"), m.counter("fm.request_updates"))
    };
    let (t_reuse, workers_reuse, msgs_reuse) = run(true);
    let (t_yarn, workers_yarn, msgs_yarn) = run(false);
    assert!(
        workers_yarn > workers_reuse * 3,
        "per-task containers must start far more workers: {workers_yarn} vs {workers_reuse}"
    );
    assert!(
        t_yarn > t_reuse * 1.15,
        "reuse should be much faster: {t_reuse:.0}s vs {t_yarn:.0}s"
    );
    assert!(
        msgs_yarn > msgs_reuse,
        "per-task mode sends more request messages: {msgs_yarn} vs {msgs_reuse}"
    );
}

#[test]
fn incremental_protocol_is_message_frugal() {
    // §3.1: "in the simplest form, an application only specifies resource
    // demand once". A steady job should send request updates proportional
    // to its task count, not its instance count.
    let mut c = Cluster::new(ClusterConfig {
        n_machines: 10,
        rack_size: 5,
        seed: 34,
        ..ClusterConfig::default()
    });
    let desc = wordcount_job(&MapReduceParams {
        maps: 200,
        reduces: 4,
        map_duration_s: 3.0,
        reduce_duration_s: 3.0,
        jitter: 0.1,
        max_workers: 50,
        binary_mb: 40.0,
        ..Default::default()
    });
    let j = c.submit(&desc, &SubmitOpts::default());
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(2000))
        .expect("finishes");
    assert!(ok);
    let m = c.world.metrics();
    let updates = m.counter("fm.request_updates");
    let instances = m.counter("jm.instances_finished");
    assert!(instances >= 204);
    assert!(
        updates * 10 < instances,
        "incremental protocol: {updates} request updates for {instances} instances"
    );
}

#[test]
fn job_status_query_reports_progress() {
    // The paper's command-line monitoring path: "user can also query the
    // whole job status from JobMaster by command line tool."
    use fuxi::proto::Msg;
    use fuxi::sim::{Actor, ActorId, Ctx};
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut c = Cluster::new(ClusterConfig {
        n_machines: 10,
        rack_size: 5,
        seed: 35,
        ..ClusterConfig::default()
    });
    let desc = wordcount_job(&MapReduceParams {
        maps: 30,
        reduces: 4,
        map_duration_s: 30.0,
        reduce_duration_s: 10.0,
        jitter: 0.1,
        binary_mb: 40.0,
        ..Default::default()
    });
    let j = c.submit(&desc, &SubmitOpts::default());
    c.run_for(SimDuration::from_secs(20));
    let (_, jm) = c.find_jobmaster(j).expect("JobMaster up");

    struct StatusProbe {
        target: fuxi::sim::ActorId,
        reply: Rc<RefCell<Option<fuxi::proto::JobSummary>>>,
    }
    impl Actor<Msg> for StatusProbe {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.target, Msg::JmStatusQuery);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, msg: Msg) {
            if let Msg::JmStatusReply { summary, .. } = msg {
                *self.reply.borrow_mut() = Some(summary);
            }
        }
    }
    let reply = Rc::new(RefCell::new(None));
    c.world.spawn(
        None,
        Box::new(StatusProbe {
            target: jm,
            reply: reply.clone(),
        }),
    );
    c.run_for(SimDuration::from_secs(2));
    let s = reply.borrow().expect("status reply arrived");
    assert_eq!(s.tasks_total, 2);
    // The reduce task has not started yet, so only map instances count.
    assert_eq!(s.instances_total, 30);
    assert!(s.instances_running > 0, "maps mid-flight: {s:?}");
    assert!(s.workers_active > 0);
}

#[test]
fn request_deltas_are_batched_by_the_master() {
    // §3.4 batch mode: "some similar requests (e.g., frequently changing
    // resource requests from one application) are merged compactly and
    // handled in a batch mode". With a 2-task job the master should apply
    // far fewer scheduling passes than it receives messages when updates
    // arrive inside one batch window.
    let mut c = Cluster::new(ClusterConfig {
        n_machines: 10,
        rack_size: 5,
        seed: 36,
        ..ClusterConfig::default()
    });
    let j = c.submit(
        &wordcount_job(&MapReduceParams {
            maps: 40,
            reduces: 4,
            map_duration_s: 4.0,
            reduce_duration_s: 4.0,
            jitter: 0.1,
            binary_mb: 40.0,
            ..Default::default()
        }),
        &SubmitOpts::default(),
    );
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(1000))
        .expect("finishes");
    assert!(ok);
    let m = c.world.metrics();
    let updates = m.counter("fm.request_updates");
    let dups = m.counter("fm.dup_deltas_dropped");
    assert_eq!(dups, 0, "reliable network: no duplicates");
    // The scheduling-time histogram counts engine invocations; request
    // processing must not exceed a small multiple of the message count
    // (merging makes it sub-linear in bursts, and returns dominate).
    assert!(updates >= 2, "at least one request per task: {updates}");
}

#[test]
fn locality_tree_places_maps_near_their_data() {
    // §3.3's purpose: "computation at best happens where data resides".
    // With a 3×-replicated input and locality hints flowing request → tree
    // → grant → instance assignment, the overwhelming majority of map
    // reads must be local disk reads, not network fetches.
    let mut c = Cluster::new(ClusterConfig {
        n_machines: 20,
        rack_size: 5,
        seed: 37,
        ..ClusterConfig::default()
    });
    c.pangu.create("big-input", 20.0 * 1024.0, 256.0, 3, &c.topo);
    let desc = wordcount_job(&MapReduceParams {
        maps: 80,
        reduces: 1,
        map_duration_s: 1.0,
        reduce_duration_s: 1.0,
        jitter: 0.0,
        map_output_mb: 1.0,
        input_pattern: Some("pangu://big-input".into()),
        data_driven: true,
        binary_mb: 20.0,
        ..Default::default()
    });
    let j = c.submit(&desc, &SubmitOpts::default());
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(2000))
        .expect("finishes");
    assert!(ok);
    let m = c.world.metrics();
    let local = m.counter("worker.local_reads");
    let remote = m.counter("worker.remote_reads");
    assert!(local + remote >= 80, "every map read its chunk");
    let rate = local as f64 / (local + remote) as f64;
    assert!(
        rate > 0.6,
        "locality-tree scheduling should make most reads local: {rate:.2} \
         ({local} local / {remote} remote)"
    );
}
