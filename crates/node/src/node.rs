//! `LiveNode`: one deployment node — one OS process — of a topology.
//!
//! Boots a [`fuxi_rt::LiveRuntime`] whose actor ids live in this node's
//! window, spawns exactly the actor groups the [`DeployTopology`] assigns
//! here, and wires the node supervisor (hub or leaf) so every other id in
//! the topology stays routable. The same `DeployTopology` drives
//! single-process mode (`fuxi_rt::LiveCluster::from_topology` flattens
//! it); this runner is the multi-process interpretation.

use crate::supervisor::{HubSupervisor, LeafConfig, LeafSupervisor};
use fuxi_agent::{FuxiAgent, MasterFactory, MasterLaunch, WorkerFactory, WorkerLaunch};
use fuxi_apsara::{LockService, NameRegistry, PanguHandle, StoreHandle};
use fuxi_cluster::deploy::{ActorGroup, DeployTopology, NodeRole};
use fuxi_cluster::{JobState, SubmitOpts};
use fuxi_core::master::FuxiMaster;
use fuxi_job::job_master::JobMaster;
use fuxi_job::worker::TaskWorker;
use fuxi_job::JobDesc;
use fuxi_proto::msg::AppDescription;
use fuxi_proto::topology::{Topology, TopologyBuilder};
use fuxi_proto::{JobId, MachineId, Msg, WireError};
use fuxi_sim::{Actor, ActorId, Ctx, MachineConfig, SimDuration, TraceId};
use fuxi_rt::{LiveRuntime, RuntimeConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type ClientLog = Arc<Mutex<BTreeMap<JobId, JobState>>>;

/// The submitting client (same protocol as the harness clients: retry
/// unaccepted submissions across failovers, record outcomes).
struct Client {
    naming: NameRegistry,
    log: ClientLog,
    pending: BTreeMap<JobId, AppDescription>,
    /// Duplicate terminal notifications observed (must stay 0: exactly-once
    /// job completion is the invariant distributed failover must preserve).
    dup_finishes: Arc<AtomicU64>,
}

impl Actor<Msg> for Client {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer(SimDuration::from_secs(2), 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        match msg {
            Msg::SubmitJob { job, desc, .. } => {
                self.log.lock().unwrap().entry(job).or_insert(JobState {
                    submitted_s: ctx.now().as_secs_f64(),
                    ..Default::default()
                });
                self.pending.insert(job, desc.clone());
                if let Some(fm) = self.naming.master() {
                    ctx.send(
                        fm,
                        Msg::SubmitJob {
                            job,
                            desc,
                            client: ctx.id(),
                        },
                    );
                }
            }
            Msg::JobAccepted { job, .. } => {
                if let Some(st) = self.log.lock().unwrap().get_mut(&job) {
                    st.accepted = true;
                }
                self.pending.remove(&job);
            }
            Msg::JobFinished {
                job,
                success,
                message,
                ..
            } => {
                if let Some(st) = self.log.lock().unwrap().get_mut(&job) {
                    if st.done.is_some() {
                        self.dup_finishes.fetch_add(1, Ordering::Relaxed);
                    }
                    st.done = Some((success, ctx.now().as_secs_f64(), message));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
        if let Some(fm) = self.naming.master() {
            for (&job, desc) in &self.pending {
                ctx.send_traced(
                    fm,
                    Msg::SubmitJob {
                        job,
                        desc: desc.clone(),
                        client: ctx.id(),
                    },
                    TraceId::from_job(job.0),
                );
            }
        }
        ctx.timer(SimDuration::from_secs(2), 1);
    }
}

enum Supervisor {
    Hub(HubSupervisor),
    Leaf(LeafSupervisor),
}

/// One booted deployment node.
pub struct LiveNode {
    /// The node's runtime (actor ids windowed by node index).
    pub rt: LiveRuntime<Msg>,
    /// This process's name-service replica.
    pub naming: NameRegistry,
    /// This process's checkpoint-store replica.
    pub store: StoreHandle,
    /// Per-process metrics view (masters publish here; the scrape
    /// endpoint of *this* process serves it).
    pub hub_metrics: fuxi_sim::obs::MetricsHub,
    /// Machine topology (identical in every process).
    pub topo: Arc<Topology>,
    /// The deployment this node belongs to.
    pub deploy: DeployTopology,
    /// This node's index.
    pub node_index: usize,
    /// Actors spawned locally, in spawn order.
    pub local_actors: Vec<ActorId>,
    supervisor: Supervisor,
    log: Option<ClientLog>,
    client: Option<ActorId>,
    dup_finishes: Arc<AtomicU64>,
    next_job: u32,
}

fn machine_topology(deploy: &DeployTopology) -> Arc<Topology> {
    let cfg = &deploy.cluster;
    let mut b = TopologyBuilder::new();
    let full = cfg.n_machines / cfg.rack_size;
    let rem = cfg.n_machines % cfg.rack_size;
    b = b.uniform(full, cfg.rack_size, cfg.machine_spec.clone());
    if rem > 0 {
        b = b.add_rack(vec![cfg.machine_spec.clone(); rem]);
    }
    Arc::new(b.build())
}

impl LiveNode {
    /// Boots node `node_index` of `deploy`. For a leaf, `hub_addr` is the
    /// hub's *actual* address (the topology may have been built with
    /// `":0"`); for the hub it overrides the spec's listen address when
    /// given.
    pub fn boot(
        deploy: DeployTopology,
        node_index: usize,
        hub_addr: Option<&str>,
    ) -> Result<LiveNode, WireError> {
        let cfg = deploy.cluster.clone();
        let spec = deploy.nodes[node_index].clone();
        let topo = machine_topology(&deploy);
        let machines: Vec<MachineConfig> = topo
            .machines()
            .map(|m| MachineConfig {
                rack: topo.rack_of(m).0,
                disk_bw_mbps: topo.spec(m).disk_bw_mbps,
                net_bw_mbps: topo.spec(m).net_bw_mbps,
            })
            .collect();
        let rt: LiveRuntime<Msg> = LiveRuntime::new(RuntimeConfig {
            machines,
            seed: cfg.seed ^ (node_index as u64) << 56,
            obs: cfg.obs.clone(),
            actor_base: deploy.actor_base(node_index),
            ..RuntimeConfig::default()
        });
        let naming = NameRegistry::new();
        let store = StoreHandle::new();
        let pangu = PanguHandle::new(cfg.seed.wrapping_mul(31).wrapping_add(7));
        let hub_metrics = fuxi_sim::obs::MetricsHub::new(cfg.master.metrics.window_s);
        rt.attach_hub(hub_metrics.clone());

        // Factories for JobMasters/workers launched on this node's machines.
        let worker_cfg = cfg.jm.worker.clone();
        let worker_factory: WorkerFactory = Arc::new(move |launch: &WorkerLaunch| {
            Box::new(TaskWorker::from_spec(&launch.spec, worker_cfg.clone()))
        });
        let jm_cfg = cfg.jm.clone();
        let (n2, s2, p2, t2) = (naming.clone(), store.clone(), pangu.clone(), topo.clone());
        let master_factory: MasterFactory = Arc::new(move |launch: &MasterLaunch| {
            Box::new(JobMaster::new(
                launch.app,
                launch.job,
                jm_cfg.clone(),
                n2.clone(),
                s2.clone(),
                p2.clone(),
                t2.clone(),
                launch.desc.payload.clone(),
                launch.desc.master_resource.clone(),
            ))
        });

        // Spawn this node's groups in spec order; ids must land exactly
        // where the topology computed them, or cross-process addressing
        // would silently break.
        let lock_id = deploy.lock_id().id;
        let log: ClientLog = Arc::new(Mutex::new(BTreeMap::new()));
        let dup_finishes = Arc::new(AtomicU64::new(0));
        let mut local_actors = Vec::new();
        let mut client = None;
        let mut hosts_client = false;
        for (gi, group) in spec.actors.iter().enumerate() {
            match group {
                ActorGroup::LockService => {
                    let id = rt.spawn(None, Box::new(LockService::with_defaults()));
                    assert_eq!(id, deploy.actor_id(node_index, gi, 0));
                    local_actors.push(id);
                }
                ActorGroup::Master => {
                    let id = rt.spawn(
                        None,
                        Box::new(FuxiMaster::new(
                            cfg.master.clone(),
                            (*topo).clone(),
                            naming.clone(),
                            store.clone(),
                            lock_id,
                            hub_metrics.clone(),
                        )),
                    );
                    assert_eq!(id, deploy.actor_id(node_index, gi, 0));
                    local_actors.push(id);
                }
                ActorGroup::Agents { first, count } => {
                    for k in 0..*count {
                        let m = MachineId(first + k);
                        let id = rt.spawn(
                            Some(m.0),
                            Box::new(FuxiAgent::new(
                                m,
                                topo.spec(m).resources.clone(),
                                cfg.agent.clone(),
                                naming.clone(),
                                master_factory.clone(),
                                worker_factory.clone(),
                            )),
                        );
                        assert_eq!(id, deploy.actor_id(node_index, gi, k));
                        local_actors.push(id);
                    }
                }
                ActorGroup::Client => {
                    let id = rt.spawn(
                        None,
                        Box::new(Client {
                            naming: naming.clone(),
                            log: log.clone(),
                            pending: BTreeMap::new(),
                            dup_finishes: Arc::clone(&dup_finishes),
                        }),
                    );
                    assert_eq!(id, deploy.actor_id(node_index, gi, 0));
                    client = Some(id);
                    hosts_client = true;
                    local_actors.push(id);
                }
            }
        }

        // Wire the supervisor: router out, injector in, liveness oracle.
        let inject = rt.remote_injector();
        let supervisor = match spec.role {
            NodeRole::Hub => {
                let listen = hub_addr
                    .map(str::to_owned)
                    .or_else(|| spec.addr.clone())
                    .unwrap_or_else(|| "127.0.0.1:0".to_owned());
                let hub = HubSupervisor::start(
                    &listen,
                    &spec.name,
                    naming.clone(),
                    store.clone(),
                    inject,
                )?;
                rt.set_remote_router(hub.router());
                rt.set_remote_alive(hub.remote_alive());
                Supervisor::Hub(hub)
            }
            NodeRole::Leaf => {
                let addr = hub_addr
                    .map(str::to_owned)
                    .or_else(|| deploy.nodes[deploy.hub_index()].addr.clone())
                    .expect("leaf needs the hub address");
                let leaf = LeafSupervisor::start(
                    &addr,
                    LeafConfig::new(&spec.name, node_index as u32),
                    naming.clone(),
                    store.clone(),
                    inject,
                );
                rt.set_remote_router(leaf.router());
                rt.set_remote_alive(leaf.remote_alive());
                Supervisor::Leaf(leaf)
            }
        };

        Ok(LiveNode {
            rt,
            naming,
            store,
            hub_metrics,
            topo,
            deploy,
            node_index,
            local_actors,
            supervisor,
            log: hosts_client.then_some(log),
            client,
            dup_finishes,
            next_job: 1,
        })
    }

    /// The hub's bound listen address (hub nodes only).
    pub fn hub_addr(&self) -> Option<std::net::SocketAddr> {
        match &self.supervisor {
            Supervisor::Hub(h) => Some(h.addr()),
            Supervisor::Leaf(_) => None,
        }
    }

    /// Hub: blocks until leaves `1..=n` connected. Leaf: blocks until the
    /// hub link is up (`n` ignored).
    pub fn wait_connected(&self, n: u32, timeout: Duration) -> bool {
        match &self.supervisor {
            Supervisor::Hub(h) => h.wait_peers(n, timeout),
            Supervisor::Leaf(l) => l.wait_connected(timeout),
        }
    }

    /// `true` while node `i`'s link is up (hub) / the hub link is up (leaf).
    pub fn peer_up(&self, node_index: u32) -> bool {
        match &self.supervisor {
            Supervisor::Hub(h) => h.peer_up(node_index),
            Supervisor::Leaf(l) => l.connected(),
        }
    }

    /// Fault injection (leaf only): hard-close the hub link mid-flight.
    pub fn sever_link(&self) {
        if let Supervisor::Leaf(l) = &self.supervisor {
            l.sever();
        }
    }

    /// Hub frame-relay counters `(relayed, dropped, accepted)`; zeros on
    /// leaves.
    pub fn hub_stats(&self) -> (u64, u64, u64) {
        match &self.supervisor {
            Supervisor::Hub(h) => h.stats(),
            Supervisor::Leaf(_) => (0, 0, 0),
        }
    }

    /// Leaf reconnect count (0 for hubs).
    pub fn reconnects(&self) -> u64 {
        match &self.supervisor {
            Supervisor::Hub(_) => 0,
            Supervisor::Leaf(l) => l.reconnects(),
        }
    }

    /// Starts the HTTP scrape endpoint serving this process's metrics.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        fuxi_rt::scrape::serve(self.hub_metrics.clone(), addr)
    }

    /// Submits a job (client-hosting nodes only); returns its id.
    pub fn submit(&mut self, desc: &JobDesc, opts: &SubmitOpts) -> JobId {
        let client = self.client.expect("this node hosts no client");
        let job = JobId(self.next_job);
        self.next_job += 1;
        let app_desc = AppDescription {
            app_type: "fuxi_job".to_owned(),
            quota_group: opts.quota_group,
            priority: opts.priority,
            master_resource: fuxi_proto::ResourceVec::cores_mb(1, 2048),
            master_package_mb: opts.master_package_mb,
            payload: desc.to_json(),
        };
        self.rt.send_external_traced(
            client,
            Msg::SubmitJob {
                job,
                desc: app_desc,
                client,
            },
            TraceId::from_job(job.0),
        );
        job
    }

    /// Job state as the client observed it.
    pub fn job_state(&self, job: JobId) -> Option<JobState> {
        self.log.as_ref()?.lock().unwrap().get(&job).cloned()
    }

    /// Number of jobs in a terminal state.
    pub fn finished_count(&self) -> usize {
        self.log
            .as_ref()
            .map(|l| l.lock().unwrap().values().filter(|s| s.done.is_some()).count())
            .unwrap_or(0)
    }

    /// All jobs and their client-observed states.
    pub fn all_jobs(&self) -> Vec<(JobId, JobState)> {
        self.log
            .as_ref()
            .map(|l| {
                l.lock()
                    .unwrap()
                    .iter()
                    .map(|(&j, s)| (j, s.clone()))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Blocks until `n` jobs are terminal or `timeout` passes.
    pub fn wait_n_done(&self, n: usize, timeout: Duration) -> usize {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if self.finished_count() >= n {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.finished_count()
    }

    /// The current master according to this process's naming replica.
    pub fn current_master(&self) -> Option<ActorId> {
        self.naming.master()
    }

    /// Duplicate terminal job notifications the client saw (0 = the
    /// exactly-once completion invariant held across failovers).
    pub fn duplicate_finishes(&self) -> u64 {
        self.dup_finishes.load(Ordering::Relaxed)
    }
}
