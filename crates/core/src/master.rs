//! The FuxiMaster actor: protocol handling, prioritized request processing,
//! hot-standby election and user-transparent failover.
//!
//! Responsibilities (paper Sections 2.2, 3.4, 4.3.1):
//!
//! * **Match-making** between agents' free resources and application
//!   masters' incremental requests, through [`crate::scheduler::Engine`].
//! * **Prioritized request handling** — "urgent requests like resource
//!   reversion and re-assignment will be triggered by events ... some
//!   similar requests (e.g., frequently changing resource requests from one
//!   application) are merged compactly and handled in a batch mode ...
//!   other heavy but not emergent requests such as quota automatic
//!   adjusting or bad node detection will be captured at a fixed time
//!   interval in a roll-up manner." Concretely: `ReturnGrant` is applied
//!   immediately; `RequestUpdate` deltas are merged per app and flushed on
//!   a short batch timer; blacklist sweeps and launch retries run on the
//!   roll-up timer.
//! * **Hot-standby election** via the Apsara lock service; a standby master
//!   holds no state until `LockGranted` promotes it.
//! * **Failover rebuild** — hard state from the checkpoint, soft state
//!   re-collected from agents (`AgentAllocationReport`) and application
//!   masters (`FullRequestSync`) during a bounded rebuild window (Figure 7),
//!   after which scheduling resumes with all prior grants intact.

use crate::blacklist::{BlacklistConfig, ClusterBlacklist, ExclusionReason, Transition};
use crate::quota::{QuotaGroup, QuotaManager};
use crate::scheduler::{Engine, EngineConfig, EngineEvent, MASTER_UNIT};
use crate::state::{AppDescRecord, HardState, JobRecord};
use fuxi_apsara::naming::FUXI_MASTER;
use fuxi_apsara::{NameRegistry, StoreHandle};
use fuxi_proto::msg::{AppDescription, SeqCheck, SeqReceiver, SeqSender};
use fuxi_proto::request::{GrantDelta, RequestDelta};
use fuxi_proto::topology::Topology;
use fuxi_obs::{MasterRollup, MetricsHub, MetricsPlaneConfig, SloAlert, SloWatchdog, WindowRing};
use fuxi_proto::{AppId, JobId, MachineId, Msg, QuotaGroupId, UnitId};
use fuxi_sim::{
    Actor, ActorId, Ctx, SimDuration, SimTime, SpanKind, TraceEvent, TraceId, WindowedHistogram,
};
use std::collections::{BTreeMap, BTreeSet};

/// FuxiMaster tuning.
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Lock lease; bounds how long a dead primary stalls the cluster.
    pub lease_ttl: SimDuration,
    /// Keepalive cadence (should be well under `lease_ttl`).
    pub keepalive_interval: SimDuration,
    /// Request-delta batch flush interval (Section 3.4 batch mode).
    pub batch_interval: SimDuration,
    /// Roll-up interval for heavy housekeeping (bad-node detection, launch
    /// retries, metric samples).
    pub rollup_interval: SimDuration,
    /// How long a new primary collects soft state before scheduling resumes.
    pub rebuild_window: SimDuration,
    /// Scheduling-engine tuning.
    pub engine: EngineConfig,
    /// Blacklist configuration.
    pub blacklist: BlacklistConfig,
    /// Quota groups to install (group 0 always exists, unlimited).
    pub quota_groups: Vec<(QuotaGroupId, QuotaGroup)>,
    /// Metrics-plane tuning: windowed rollup cadence and SLO thresholds.
    /// `metrics.enabled = false` turns the whole plane off (the overhead
    /// benchmark compares exactly this toggle).
    pub metrics: MetricsPlaneConfig,
}

impl Default for MasterConfig {
    fn default() -> Self {
        Self {
            lease_ttl: SimDuration::from_secs(6),
            keepalive_interval: SimDuration::from_secs(2),
            batch_interval: SimDuration::from_millis(100),
            rollup_interval: SimDuration::from_secs(5),
            rebuild_window: SimDuration::from_secs(8),
            engine: EngineConfig::default(),
            blacklist: BlacklistConfig::default(),
            quota_groups: Vec::new(),
            metrics: MetricsPlaneConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Standby,
    Rebuilding,
    Primary,
}

const TIMER_KEEPALIVE: u64 = 1;
const TIMER_BATCH: u64 = 2;
const TIMER_ROLLUP: u64 = 3;
const TIMER_REBUILD_DONE: u64 = 4;
const TIMER_METRICS: u64 = 5;

#[derive(Debug)]
struct JobRuntime {
    app: AppId,
    client: ActorId,
    desc: AppDescription,
    jm_machine: Option<MachineId>,
    jm_actor: Option<ActorId>,
    submitted_at: SimTime,
    /// Machines where JM launch failed (avoid on retry).
    launch_avoid: BTreeSet<MachineId>,
    /// Launch request outstanding (StartAppMaster sent, no reply yet).
    launching: bool,
}

/// The FuxiMaster actor. Spawn two (a pair) for hot-standby operation.
pub struct FuxiMaster {
    cfg: MasterConfig,
    topo: Topology,
    naming: NameRegistry,
    store: StoreHandle,
    lock_svc: ActorId,
    role: Role,
    engine: Option<Engine>,
    blacklist: Option<ClusterBlacklist>,
    jobs: BTreeMap<JobId, JobRuntime>,
    app_to_job: BTreeMap<AppId, JobId>,
    next_app: u32,
    agents: Vec<Option<ActorId>>,
    am_addr: BTreeMap<AppId, ActorId>,
    req_rx: BTreeMap<AppId, SeqReceiver>,
    grant_tx: BTreeMap<AppId, SeqSender>,
    pending_deltas: BTreeMap<AppId, BTreeMap<UnitId, RequestDelta>>,
    /// Apps whose AM has re-synced during the current rebuild.
    apps_seen: BTreeSet<AppId>,
    /// Reused event buffer for [`Self::flush_engine`]: the engine swaps its
    /// decision log into this, so steady-state flushes allocate nothing.
    scratch_events: Vec<EngineEvent>,
    /// Shared cluster view fed by agent/JM reports and the master's own
    /// rollup. Like the name registry, the hub is cluster infrastructure:
    /// it outlives any single master, so pending-age clocks keep running
    /// across a failover.
    hub: MetricsHub,
    /// Edge-triggered SLO evaluation state (per-rule active flags).
    watchdog: SloWatchdog,
    /// Scheduling-decision latencies bucketed into time windows; the
    /// rollup reads p50/p95/p99 over the retained horizon. Kept on the
    /// actor (not in `ctx.metrics()`) so the live runtime's periodic
    /// per-thread metric flush cannot steal it mid-window.
    sched_win: WindowedHistogram,
    /// Job completions per window, for the jobs/sec rate.
    jobs_done_win: WindowRing,
    /// Cumulative submit/finish counters mirrored into each rollup.
    jobs_submitted_total: u64,
    jobs_finished_total: u64,
    /// This master's election ordinal (1 = first primary), from the hub.
    epoch: u32,
}

impl FuxiMaster {
    /// Creates a new instance with the given configuration.
    pub fn new(
        cfg: MasterConfig,
        topo: Topology,
        naming: NameRegistry,
        store: StoreHandle,
        lock_svc: ActorId,
        hub: MetricsHub,
    ) -> Self {
        let n = topo.n_machines();
        let (w, r) = (cfg.metrics.window_s, cfg.metrics.retain);
        Self {
            hub,
            watchdog: SloWatchdog::default(),
            sched_win: WindowedHistogram::new(w, r),
            jobs_done_win: WindowRing::new(w, r),
            jobs_submitted_total: 0,
            jobs_finished_total: 0,
            epoch: 0,
            cfg,
            topo,
            naming,
            store,
            lock_svc,
            role: Role::Standby,
            engine: None,
            blacklist: None,
            jobs: BTreeMap::new(),
            app_to_job: BTreeMap::new(),
            next_app: 0,
            agents: vec![None; n],
            am_addr: BTreeMap::new(),
            req_rx: BTreeMap::new(),
            grant_tx: BTreeMap::new(),
            pending_deltas: BTreeMap::new(),
            apps_seen: BTreeSet::new(),
            scratch_events: Vec::new(),
        }
    }

    fn is_active(&self) -> bool {
        self.role == Role::Primary
    }

    /// The causal trace of the job behind `app` (NONE for unknown apps).
    fn trace_of_app(&self, app: AppId) -> TraceId {
        self.app_to_job
            .get(&app)
            .map(|j| TraceId::from_job(j.0))
            .unwrap_or(TraceId::NONE)
    }

    // ------------------------------------------------------------------
    // Election & failover
    // ------------------------------------------------------------------

    fn become_primary(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut quotas = QuotaManager::new();
        for (id, g) in &self.cfg.quota_groups {
            quotas.define(*id, g.clone());
        }
        let mut engine = Engine::new(self.topo.clone(), self.cfg.engine.clone(), quotas);
        // Machines join the schedulable pool when their agent reports in
        // ("it passively collects total free resources from each machine").
        for m in self.topo.machines() {
            engine.deactivate_machine(m);
        }
        let mut blacklist =
            ClusterBlacklist::new(self.cfg.blacklist.clone(), self.topo.n_machines());

        // Hard state from the checkpoint; everything else is soft.
        let hard = HardState::load(&self.store);
        self.next_app = hard.next_app;
        blacklist.restore(ctx.now(), &hard.blacklist);
        let had_jobs = !hard.jobs.is_empty();
        for rec in &hard.jobs {
            self.jobs.insert(
                rec.job_id(),
                JobRuntime {
                    app: rec.app_id(),
                    client: rec.client_actor(),
                    desc: rec.desc.to_description(),
                    jm_machine: None,
                    jm_actor: None,
                    submitted_at: ctx.now(),
                    launch_avoid: BTreeSet::new(),
                    launching: false,
                },
            );
            self.app_to_job.insert(rec.app_id(), rec.job_id());
        }
        self.engine = Some(engine);
        self.blacklist = Some(blacklist);
        self.naming.register(FUXI_MASTER, ctx.id());
        ctx.metrics().count("fm.became_primary", 1);
        ctx.trace(TraceEvent::MasterElected {
            actor: ctx.id().0,
            failover: had_jobs,
        });
        ctx.timer(self.cfg.batch_interval, TIMER_BATCH);
        ctx.timer(self.cfg.rollup_interval, TIMER_ROLLUP);
        if self.cfg.metrics.enabled {
            // The hub survives failover (it is cluster infrastructure, not
            // master state), so the election ordinal is stored there: a new
            // primary continues the count instead of restarting at one.
            self.epoch = self.hub.update(|v| {
                v.rollup.master_epoch += 1;
                v.rollup.master_epoch
            });
            ctx.timer(
                SimDuration::from_secs_f64(self.cfg.metrics.window_s),
                TIMER_METRICS,
            );
        }
        if had_jobs {
            // Failover: collect soft state before scheduling resumes.
            self.role = Role::Rebuilding;
            self.apps_seen.clear();
            self.engine.as_mut().unwrap().pause();
            ctx.trace(TraceEvent::RebuildStarted {
                jobs: self.jobs.len() as u32,
            });
            // Forensic snapshot of what every actor saw leading into the
            // failover — Table 3 fault runs produce a timeline, not just
            // counters.
            ctx.flight_dump("master_failover");
            ctx.timer(self.cfg.rebuild_window, TIMER_REBUILD_DONE);
        } else {
            self.role = Role::Primary;
        }
    }

    fn finish_rebuild(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.role != Role::Rebuilding {
            return;
        }
        self.role = Role::Primary;
        ctx.trace(TraceEvent::RebuildDone {
            apps_seen: self.apps_seen.len() as u32,
        });
        let t_rebuild = std::time::Instant::now();
        let t = std::time::Instant::now();
        self.engine.as_mut().unwrap().resume();
        self.record_sched(ctx, t);
        self.flush_engine(ctx);
        // Jobs whose application master never re-appeared get a fresh one;
        // it recovers from its snapshot ("the JobMaster ... will initially
        // load the snapshot of instance status").
        let missing: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, j)| !self.apps_seen.contains(&j.app))
            .map(|(&id, _)| id)
            .collect();
        for job in missing {
            self.launch_jm(ctx, job);
        }
        // Now that the books are whole, give every re-attached AM the
        // authoritative grant baseline (deferred from the rebuild window).
        let ams: Vec<(AppId, fuxi_sim::ActorId)> =
            self.am_addr.iter().map(|(&a, &x)| (a, x)).collect();
        for (app, am) in ams {
            let snapshot = self.grant_snapshot(app);
            self.grant_tx.entry(app).or_default().reset();
            ctx.send(am, Msg::FullGrantSync { snapshot });
        }
        ctx.metrics().count("fm.rebuild_done", 1);
        ctx.span(SpanKind::Rebuild, t_rebuild.elapsed().as_secs_f64());
    }

    // ------------------------------------------------------------------
    // Job lifecycle
    // ------------------------------------------------------------------

    fn checkpoint(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let t = std::time::Instant::now();
        let hard = HardState {
            jobs: self
                .jobs
                .iter()
                .map(|(&job, j)| JobRecord {
                    job: job.0,
                    app: j.app.0,
                    client: j.client.0,
                    desc: AppDescRecord::from(&j.desc),
                })
                .collect(),
            blacklist: self
                .blacklist
                .as_ref()
                .map(|b| b.snapshot())
                .unwrap_or_default(),
            next_app: self.next_app,
        };
        hard.save(&self.store);
        ctx.span(SpanKind::Checkpoint, t.elapsed().as_secs_f64());
    }

    fn submit_job(&mut self, ctx: &mut Ctx<'_, Msg>, job: JobId, desc: AppDescription, client: ActorId) {
        if self.jobs.contains_key(&job) {
            return; // duplicate submission
        }
        let app = AppId(self.next_app);
        self.next_app += 1;
        self.jobs.insert(
            job,
            JobRuntime {
                app,
                client,
                desc,
                jm_machine: None,
                jm_actor: None,
                submitted_at: ctx.now(),
                launch_avoid: BTreeSet::new(),
                launching: false,
            },
        );
        self.app_to_job.insert(app, job);
        // The job's causal chain is keyed by its id, so even a resubmission
        // to a post-failover primary continues the same trace.
        ctx.set_trace(TraceId::from_job(job.0));
        ctx.trace(TraceEvent::JobSubmitted { job: job.0, app: app.0 });
        // Hard-state checkpoint happens exactly here and at job stop.
        self.checkpoint(ctx);
        ctx.send(client, Msg::JobAccepted { job, app });
        if self.is_active() {
            self.launch_jm(ctx, job);
        }
        ctx.metrics().count("fm.jobs_submitted", 1);
        self.jobs_submitted_total += 1;
    }

    fn launch_jm(&mut self, ctx: &mut Ctx<'_, Msg>, job: JobId) {
        let Some(j) = self.jobs.get(&job) else {
            return;
        };
        if j.launching || j.jm_actor.is_some() {
            return;
        }
        // Launches are triggered both causally (submit) and by the roll-up
        // retry timer; re-establish the job's trace for both paths.
        ctx.set_trace(TraceId::from_job(job.0));
        let app = j.app;
        let group = j.desc.quota_group;
        let res = j.desc.master_resource.clone();
        let avoid = j.launch_avoid.clone();
        let engine = self.engine.as_mut().unwrap();
        if !engine.has_app(app) {
            engine.attach_app(app, group, Vec::new());
        }
        let t = std::time::Instant::now();
        let placed = engine.place_master(app, res, &avoid);
        self.record_sched(ctx, t);
        // Preemption revokes (if any) must reach agents and AMs; the
        // master-unit grant itself is bookkeeping-only and filtered by
        // flush_engine.
        self.flush_engine(ctx);
        let Some(m) = placed else {
            ctx.metrics().count("fm.jm_launch_no_capacity", 1);
            return; // retried on the roll-up timer
        };
        let Some(agent) = self.agents[m.0 as usize] else {
            // Agent address unknown (not yet hello'd): release and retry.
            self.engine
                .as_mut()
                .unwrap()
                .return_grant(app, MASTER_UNIT, m, 1);
            let _ = self.engine.as_mut().unwrap().drain_events();
            return;
        };
        let j = self.jobs.get_mut(&job).unwrap();
        j.jm_machine = Some(m);
        j.launching = true;
        let desc = j.desc.clone();
        ctx.trace(TraceEvent::JmLaunchRequested {
            app: app.0,
            machine: m.0,
        });
        ctx.send(agent, Msg::StartAppMaster { app, job, desc });
    }

    fn job_finished(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        job: JobId,
        app: AppId,
        success: bool,
        message: String,
    ) {
        let Some(j) = self.jobs.remove(&job) else {
            return;
        };
        ctx.set_trace(TraceId::from_job(job.0));
        ctx.trace(TraceEvent::JobFinished {
            job: job.0,
            app: app.0,
            success,
        });
        self.app_to_job.remove(&app);
        self.am_addr.remove(&app);
        self.req_rx.remove(&app);
        self.grant_tx.remove(&app);
        self.pending_deltas.remove(&app);
        let t = std::time::Instant::now();
        self.engine.as_mut().unwrap().detach_app(app);
        self.record_sched(ctx, t);
        self.flush_engine(ctx);
        self.checkpoint(ctx);
        ctx.send(
            j.client,
            Msg::JobFinished {
                job,
                app,
                success,
                message,
            },
        );
        ctx.metrics().count("fm.jobs_finished", 1);
        self.jobs_finished_total += 1;
        if self.cfg.metrics.enabled {
            self.jobs_done_win.observe(ctx.now().as_secs_f64(), 1.0);
        }
    }

    // ------------------------------------------------------------------
    // Engine event fan-out
    // ------------------------------------------------------------------

    fn record_sched(&mut self, ctx: &mut Ctx<'_, Msg>, t: std::time::Instant) {
        let dt = t.elapsed().as_secs_f64();
        let now = ctx.now().as_secs_f64();
        if self.cfg.metrics.enabled {
            self.sched_win.record(now, dt);
        }
        let m = ctx.metrics();
        m.record("fm.sched_s", dt);
        m.push_series("fm.sched_ms", now, dt * 1e3);
        // The Figure 9 histogram and the exported span timeline come from
        // the same measurement.
        ctx.span(SpanKind::SchedDecision, dt);
    }

    /// Drains engine decisions into `GrantUpdate` (to AMs) and
    /// `CapacityNotify` (to agents) messages.
    fn flush_engine(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut events = std::mem::take(&mut self.scratch_events);
        self.engine.as_mut().unwrap().take_events_into(&mut events);
        if events.is_empty() {
            self.scratch_events = events;
            return;
        }
        let mut per_am: BTreeMap<AppId, Vec<GrantDelta>> = BTreeMap::new();
        // One CapacityNotify envelope per agent per flush: per-decision
        // changes are coalesced here and sent as a single run below. The
        // envelope carries the trace of its first contributing decision;
        // the per-decision Grant/Revoke trace events keep their own traces.
        let mut per_agent: BTreeMap<MachineId, (TraceId, Vec<fuxi_proto::CapacityChange>)> =
            BTreeMap::new();
        for ev in &events {
            let (app, unit, machine, delta) = match *ev {
                EngineEvent::Grant {
                    app,
                    unit,
                    machine,
                    count,
                } => (app, unit, machine, count as i64),
                EngineEvent::Revoke {
                    app,
                    unit,
                    machine,
                    count,
                    ..
                } => (app, unit, machine, -(count as i64)),
            };
            if unit != MASTER_UNIT {
                // One flush covers decisions for many jobs; each event and
                // its fan-out messages carry their own job's trace.
                let trace = self.trace_of_app(app);
                ctx.trace_as(
                    trace,
                    if delta >= 0 {
                        TraceEvent::Grant {
                            app: app.0,
                            unit: unit.0,
                            machine: machine.0,
                            count: delta as u64,
                        }
                    } else {
                        TraceEvent::Revoke {
                            app: app.0,
                            unit: unit.0,
                            machine: machine.0,
                            count: (-delta) as u64,
                        }
                    },
                );
                per_am.entry(app).or_default().push(GrantDelta {
                    unit,
                    changes: vec![(machine, delta)],
                });
                // Agents enforce the per-app envelope.
                if self.agents[machine.0 as usize].is_some() {
                    let unit_resource = self
                        .engine
                        .as_ref()
                        .unwrap()
                        .unit_resource(app, unit)
                        .unwrap_or(fuxi_proto::ResourceVec::ZERO);
                    per_agent
                        .entry(machine)
                        .or_insert_with(|| (trace, Vec::new()))
                        .1
                        .push(fuxi_proto::CapacityChange {
                            app,
                            unit,
                            unit_resource,
                            delta,
                        });
                }
            }
        }
        for (machine, (trace, changes)) in per_agent {
            if let Some(agent) = self.agents[machine.0 as usize] {
                ctx.send_traced(agent, Msg::CapacityNotify { changes }, trace);
            }
        }
        for (app, grants) in per_am {
            if let Some(&am) = self.am_addr.get(&app) {
                let seq = self.grant_tx.entry(app).or_default().next();
                let trace = self.trace_of_app(app);
                ctx.send_traced(am, Msg::GrantUpdate { seq, grants }, trace);
                ctx.metrics().count("fm.grant_updates", 1);
            }
        }
        events.clear();
        self.scratch_events = events;
    }

    // ------------------------------------------------------------------
    // Batched request handling
    // ------------------------------------------------------------------

    fn flush_batches(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if !self.is_active() {
            self.pending_deltas.clear();
            return;
        }
        let t_flush = std::time::Instant::now();
        let pending = std::mem::take(&mut self.pending_deltas);
        let had_work = !pending.is_empty();
        for (app, per_unit) in pending {
            let deltas: Vec<RequestDelta> = per_unit.into_values().collect();
            // The batch timer has no causal context of its own; each app's
            // slice of the batch runs under its job's trace.
            ctx.set_trace(self.trace_of_app(app));
            ctx.trace(TraceEvent::RequestApplied {
                app: app.0,
                deltas: deltas.len() as u32,
            });
            let t = std::time::Instant::now();
            self.engine.as_mut().unwrap().apply_deltas(app, &deltas);
            self.record_sched(ctx, t);
        }
        ctx.set_trace(TraceId::NONE);
        self.flush_engine(ctx);
        if had_work {
            ctx.span(SpanKind::BatchFlush, t_flush.elapsed().as_secs_f64());
        }
    }

    // ------------------------------------------------------------------
    // Blacklist & node lifecycle
    // ------------------------------------------------------------------

    fn apply_transitions(&mut self, ctx: &mut Ctx<'_, Msg>, transitions: Vec<Transition>) {
        for tr in transitions {
            match tr {
                Transition::Excluded(m, reason) => {
                    ctx.metrics().count("fm.machines_excluded", 1);
                    ctx.trace_as(TraceId::NONE, TraceEvent::NodeDown { machine: m.0 });
                    let t = std::time::Instant::now();
                    self.engine.as_mut().unwrap().node_down(m);
                    self.record_sched(ctx, t);
                    if reason == ExclusionReason::HeartbeatTimeout {
                        self.agents[m.0 as usize] = None;
                    }
                    // Restart any JobMaster that lived there.
                    let victims: Vec<JobId> = self
                        .jobs
                        .iter()
                        .filter(|(_, j)| j.jm_machine == Some(m))
                        .map(|(&id, _)| id)
                        .collect();
                    for job in victims {
                        {
                            let j = self.jobs.get_mut(&job).unwrap();
                            j.jm_machine = None;
                            j.jm_actor = None;
                            j.launching = false;
                            j.launch_avoid.insert(m);
                        }
                        if self.is_active() {
                            self.launch_jm(ctx, job);
                        }
                    }
                }
                Transition::Readmitted(m) => {
                    ctx.metrics().count("fm.machines_readmitted", 1);
                    ctx.trace_as(TraceId::NONE, TraceEvent::NodeUp { machine: m.0 });
                    let cap = self.topo.spec(m).resources.clone();
                    let t = std::time::Instant::now();
                    self.engine.as_mut().unwrap().node_up(m, cap);
                    self.record_sched(ctx, t);
                }
            }
        }
        if self.is_active() {
            self.flush_engine(ctx);
        }
    }

    fn rollup(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        if let Some(bl) = self.blacklist.as_mut() {
            let transitions = bl.sweep(now);
            self.apply_transitions(ctx, transitions);
        }
        if self.is_active() {
            // Retry JobMaster launches that found no capacity/agent.
            let waiting: Vec<JobId> = self
                .jobs
                .iter()
                .filter(|(_, j)| j.jm_actor.is_none() && !j.launching)
                .map(|(&id, _)| id)
                .collect();
            for job in waiting {
                self.launch_jm(ctx, job);
            }
            // Utilization gauges (Figure 10's FM_total / FM_planned).
            let engine = self.engine.as_ref().unwrap();
            let total = engine.total_capacity();
            let planned = engine.planned().clone();
            let t = now.as_secs_f64();
            let m = ctx.metrics();
            m.push_series("fm.total_mem_mb", t, total.memory_mb() as f64);
            m.push_series("fm.planned_mem_mb", t, planned.memory_mb() as f64);
            m.push_series("fm.total_cpu_milli", t, total.cpu_milli() as f64);
            m.push_series("fm.planned_cpu_milli", t, planned.cpu_milli() as f64);
            m.push_series(
                "fm.waiting_entries",
                t,
                engine.waiting_entries() as f64,
            );
        }
    }

    /// Once-per-window metrics rollup (Section 3.4's "roll-up manner"
    /// applied to observability): folds the master's own scheduler readings
    /// into the shared [`ClusterView`], evaluates the SLO watchdog, and
    /// turns each raise/clear transition into a typed trace event — plus a
    /// flight-recorder dump on raises, so every breach comes with the
    /// timeline that led into it.
    fn metrics_tick(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now().as_secs_f64();
        let engine = self.engine.as_ref().unwrap();
        let total = engine.total_capacity();
        let planned = engine.planned().clone();
        let (free, stranded, largest) =
            engine.free_summary(self.cfg.metrics.frag_probe_mem_mb);
        let sched = self.sched_win.merged();
        let rollup = MasterRollup {
            t_s: now,
            jobs_per_sec: self.jobs_done_win.rate_per_sec(now),
            jobs_submitted_total: self.jobs_submitted_total,
            jobs_finished_total: self.jobs_finished_total,
            sched_p50_s: sched.quantile(0.5),
            sched_p95_s: sched.quantile(0.95),
            sched_p99_s: sched.quantile(0.99),
            sched_count_win: sched.count(),
            total_cpu_milli: total.cpu_milli(),
            total_mem_mb: total.memory_mb(),
            planned_cpu_milli: planned.cpu_milli(),
            planned_mem_mb: planned.memory_mb(),
            waiting_entries: engine.waiting_entries() as u64,
            free_mem_mb: free,
            stranded_free_mem_mb: stranded,
            largest_free_mem_mb: largest,
            master_epoch: self.epoch,
        };
        let watchdog = &mut self.watchdog;
        let rules = &self.cfg.metrics.rules;
        let transitions: Vec<SloAlert> = self.hub.update(|v| {
            v.apply_rollup(rollup);
            let tr = watchdog.evaluate(rules, v, now);
            v.apply_alerts(&tr);
            tr
        });
        for a in &transitions {
            // Alerts are cluster-wide conditions, not per-job causality.
            ctx.trace_as(
                TraceId::NONE,
                TraceEvent::SloAlert {
                    rule: a.rule.name(),
                    raised: a.raised,
                    value: a.value as f32,
                    threshold: a.threshold as f32,
                },
            );
            ctx.metrics().count(
                if a.raised {
                    "fm.slo_raised"
                } else {
                    "fm.slo_cleared"
                },
                1,
            );
            if a.raised {
                ctx.flight_dump(a.rule.dump_reason());
            }
        }
    }

    // ------------------------------------------------------------------
    // Per-message handlers
    // ------------------------------------------------------------------

    fn on_agent_hello(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ActorId,
        machine: MachineId,
        total: fuxi_proto::ResourceVec,
    ) {
        self.agents[machine.0 as usize] = Some(from);
        let now = ctx.now();
        if let Some(bl) = self.blacklist.as_mut() {
            let tr = bl.on_heartbeat(now, machine, &fuxi_proto::NodeHealthReport::healthy());
            if let Some(tr) = tr {
                self.apply_transitions(ctx, vec![tr]);
            }
        }
        let engine = self.engine.as_mut().unwrap();
        if engine.capacity_of(machine).is_zero()
            && !self
                .blacklist
                .as_ref()
                .map(|b| b.is_excluded(machine))
                .unwrap_or(false)
        {
            let t = std::time::Instant::now();
            engine.node_up(machine, total);
            self.record_sched(ctx, t);
        }
        // Tell a restarted agent what is on the books for its machine.
        let allocations = self.engine.as_ref().unwrap().allocations_on(machine);
        ctx.send(from, Msg::AgentCapacitySnapshot { allocations });
        if self.is_active() {
            self.flush_engine(ctx);
        }
    }

    fn on_request_update(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ActorId,
        app: AppId,
        seq: u64,
        deltas: Vec<RequestDelta>,
    ) {
        ctx.metrics().count("fm.request_updates", 1);
        let rx = self.req_rx.entry(app).or_default();
        match rx.accept(seq) {
            SeqCheck::Apply => {
                let per_unit = self.pending_deltas.entry(app).or_default();
                for d in deltas {
                    match per_unit.get_mut(&d.unit) {
                        Some(existing) => existing.merge(&d),
                        None => {
                            per_unit.insert(d.unit, d);
                        }
                    }
                }
            }
            SeqCheck::Duplicate => {
                ctx.metrics().count("fm.dup_deltas_dropped", 1);
            }
            SeqCheck::Gap => {
                ctx.metrics().count("fm.request_gaps", 1);
                ctx.send(from, Msg::RequestSyncNeeded { app });
            }
        }
    }

    fn on_full_request_sync(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        from: ActorId,
        app: AppId,
        units: Vec<fuxi_proto::request::ScheduleUnitDef>,
        states: Vec<fuxi_proto::request::RequestState>,
    ) {
        self.am_addr.insert(app, from);
        self.apps_seen.insert(app);
        self.pending_deltas.remove(&app);
        self.req_rx.entry(app).or_default().synced();
        let group = self
            .app_to_job
            .get(&app)
            .and_then(|j| self.jobs.get(j))
            .map(|j| j.desc.quota_group)
            .unwrap_or(QuotaGroupId(0));
        let t = std::time::Instant::now();
        self.engine
            .as_mut()
            .unwrap()
            .full_request_sync(app, group, units, states);
        self.record_sched(ctx, t);
        // Answer with the authoritative grant snapshot and restart grant
        // numbering from this baseline — but never from a half-rebuilt
        // book: during rebuild the snapshot would be empty and the AM would
        // wrongly tear down every worker. Deferred to finish_rebuild.
        if self.role != Role::Rebuilding {
            let snapshot = self.grant_snapshot(app);
            self.grant_tx.entry(app).or_default().reset();
            ctx.send(from, Msg::FullGrantSync { snapshot });
        }
        if self.is_active() {
            self.flush_engine(ctx);
        }
    }

    fn grant_snapshot(&self, app: AppId) -> Vec<(UnitId, Vec<(MachineId, u64)>)> {
        let mut per_unit: BTreeMap<UnitId, Vec<(MachineId, u64)>> = BTreeMap::new();
        for (unit, m, _, count) in self.engine.as_ref().unwrap().app_grants(app) {
            if unit != MASTER_UNIT {
                per_unit.entry(unit).or_default().push((m, count));
            }
        }
        per_unit.into_iter().collect()
    }
}

impl Actor<Msg> for FuxiMaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.send(
            self.lock_svc,
            Msg::LockAcquire {
                name: FUXI_MASTER.to_owned(),
                ttl_s: self.cfg.lease_ttl.as_secs_f64(),
            },
        );
        ctx.timer(self.cfg.keepalive_interval, TIMER_KEEPALIVE);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        // Wall-clock cost of the whole handler (Table 2's per-message
        // processing overhead comes from these spans).
        let t_handler = std::time::Instant::now();
        match msg {
            Msg::LockGranted { .. }
                if self.role == Role::Standby => {
                    self.become_primary(ctx);
                }
            Msg::LockLost { .. } => {
                // A primary that lost its lease must stop acting: another
                // master owns the cluster now.
                ctx.metrics().count("fm.lock_lost", 1);
                ctx.trace(TraceEvent::MasterLockLost { actor: ctx.id().0 });
                self.naming.deregister(FUXI_MASTER, ctx.id());
                ctx.kill_self();
            }
            _ if self.role == Role::Standby => {
                // Standby holds no state; peers discover the primary via
                // naming, so anything arriving here is stale. Drop it.
                ctx.metrics().count("fm.standby_dropped", 1);
            }
            // In-band aggregation: agents and JobMasters push compact
            // windowed readings over the same transport as heartbeats.
            // Counters in the report are cumulative, so a lost or
            // reordered report only delays the view, never skews it.
            // (With the plane disabled the report falls through to the
            // catch-all and is dropped.)
            Msg::MetricsReport { report } if self.cfg.metrics.enabled => {
                let now = ctx.now().as_secs_f64();
                self.hub.update(|v| v.apply_report(now, &report));
                ctx.metrics().count("fm.metrics_reports", 1);
            }
            Msg::SubmitJob { job, desc, client } => self.submit_job(ctx, job, desc, client),
            Msg::StopJob { job } => {
                if let Some(j) = self.jobs.get(&job) {
                    if let Some(jm) = j.jm_actor {
                        ctx.send(jm, Msg::StopJob { job });
                    }
                }
            }
            Msg::JobFinished {
                job,
                app,
                success,
                message,
            } => self.job_finished(ctx, job, app, success, message),
            Msg::AgentHello { machine, total } => self.on_agent_hello(ctx, from, machine, total),
            Msg::AgentHeartbeat { machine, health } => {
                self.agents[machine.0 as usize] = Some(from);
                let now = ctx.now();
                if let Some(bl) = self.blacklist.as_mut() {
                    if let Some(tr) = bl.on_heartbeat(now, machine, &health) {
                        self.apply_transitions(ctx, vec![tr]);
                    }
                }
            }
            Msg::AgentAllocationReport {
                machine,
                total,
                allocations,
                app_masters,
            } => {
                self.agents[machine.0 as usize] = Some(from);
                // Re-learn where application masters live (prevents the new
                // primary from launching duplicates).
                for (app, actor) in &app_masters {
                    if let Some(&job) = self.app_to_job.get(app) {
                        let j = self.jobs.get_mut(&job).unwrap();
                        if j.jm_actor.is_none() {
                            j.jm_actor = Some(*actor);
                            j.jm_machine = Some(machine);
                            j.launching = false;
                        }
                    }
                    self.apps_seen.insert(*app);
                }
                if self.role == Role::Rebuilding {
                    let engine = self.engine.as_mut().unwrap();
                    for (app, unit, res, count) in allocations {
                        engine.adopt_allocation(app, unit, res, machine, count);
                        self.apps_seen.insert(app);
                    }
                    let t = std::time::Instant::now();
                    self.engine.as_mut().unwrap().node_up(machine, total);
                    self.record_sched(ctx, t);
                    if let Some(bl) = self.blacklist.as_mut() {
                        bl.on_heartbeat(
                            ctx.now(),
                            machine,
                            &fuxi_proto::NodeHealthReport::healthy(),
                        );
                    }
                } else {
                    // Outside a rebuild the master's books are authoritative:
                    // treat the report as a hello and correct the agent.
                    self.on_agent_hello(ctx, from, machine, total);
                }
            }
            Msg::AppMasterStarted { app, actor, machine } => {
                if let Some(&job) = self.app_to_job.get(&app) {
                    let submitted_at = self.jobs[&job].submitted_at;
                    let j = self.jobs.get_mut(&job).unwrap();
                    j.jm_actor = Some(actor);
                    j.jm_machine = Some(machine);
                    j.launching = false;
                    let dt = ctx.now().since(submitted_at).as_secs_f64();
                    ctx.metrics().record("fm.jm_start_overhead_s", dt);
                    ctx.trace_as(
                        TraceId::from_job(job.0),
                        TraceEvent::JmStarted {
                            app: app.0,
                            machine: machine.0,
                        },
                    );
                }
            }
            Msg::AppMasterStartFailed { app, reason: _ } => {
                if let Some(&job) = self.app_to_job.get(&app) {
                    let m = self.jobs[&job].jm_machine;
                    {
                        let j = self.jobs.get_mut(&job).unwrap();
                        j.launching = false;
                        j.jm_machine = None;
                        if let Some(m) = m {
                            j.launch_avoid.insert(m);
                        }
                    }
                    if let Some(m) = m {
                        self.engine
                            .as_mut()
                            .unwrap()
                            .return_grant(app, MASTER_UNIT, m, 1);
                        self.flush_engine(ctx);
                    }
                    if self.is_active() {
                        self.launch_jm(ctx, job);
                    }
                }
            }
            Msg::AppMasterExited { app, machine } => {
                if let Some(&job) = self.app_to_job.get(&app) {
                    ctx.trace_as(
                        TraceId::from_job(job.0),
                        TraceEvent::JmExited {
                            app: app.0,
                            machine: machine.0,
                        },
                    );
                    {
                        let j = self.jobs.get_mut(&job).unwrap();
                        j.jm_actor = None;
                        j.jm_machine = None;
                        j.launching = false;
                    }
                    self.engine
                        .as_mut()
                        .unwrap()
                        .return_grant(app, MASTER_UNIT, machine, 1);
                    self.flush_engine(ctx);
                    if self.is_active() {
                        ctx.metrics().count("fm.jm_restarts", 1);
                        self.launch_jm(ctx, job);
                    }
                }
            }
            Msg::AmAttach { app, units } => {
                self.am_addr.insert(app, from);
                self.apps_seen.insert(app);
                let group = self
                    .app_to_job
                    .get(&app)
                    .and_then(|j| self.jobs.get(j))
                    .map(|j| j.desc.quota_group)
                    .unwrap_or(QuotaGroupId(0));
                self.engine.as_mut().unwrap().attach_app(app, group, units);
            }
            Msg::RequestUpdate { app, seq, deltas } => {
                self.on_request_update(ctx, from, app, seq, deltas)
            }
            Msg::ReturnGrant {
                app,
                unit,
                machine,
                count,
            } => {
                // Urgent class: applied immediately so freed resources turn
                // over without waiting for the batch timer.
                ctx.metrics().count("fm.returns", 1);
                let t = std::time::Instant::now();
                self.engine.as_mut().unwrap().return_grant(app, unit, machine, count);
                self.record_sched(ctx, t);
                self.flush_engine(ctx);
            }
            Msg::FullRequestSync {
                app,
                units,
                states,
                held: _,
            } => self.on_full_request_sync(ctx, from, app, units, states),
            Msg::GrantSyncNeeded { app } => {
                let snapshot = self.grant_snapshot(app);
                self.grant_tx.entry(app).or_default().reset();
                ctx.send(from, Msg::FullGrantSync { snapshot });
            }
            Msg::AmDetach { app } => {
                let t = std::time::Instant::now();
                self.engine.as_mut().unwrap().detach_app(app);
                self.record_sched(ctx, t);
                self.flush_engine(ctx);
                self.am_addr.remove(&app);
                self.req_rx.remove(&app);
                self.grant_tx.remove(&app);
                self.pending_deltas.remove(&app);
            }
            Msg::BadMachineReport { app, machine } => {
                let now = ctx.now();
                if let Some(bl) = self.blacklist.as_mut() {
                    if let Some(tr) = bl.report_mark(now, app, machine) {
                        self.apply_transitions(ctx, vec![tr]);
                    }
                }
            }
            _ => {}
        }
        ctx.span(SpanKind::MsgHandler, t_handler.elapsed().as_secs_f64());
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            TIMER_KEEPALIVE => {
                ctx.send(
                    self.lock_svc,
                    Msg::LockKeepalive {
                        name: FUXI_MASTER.to_owned(),
                    },
                );
                // A standby keeps trying to acquire (covers the lost-grant
                // race where the lock service granted to a dead standby).
                if self.role == Role::Standby {
                    ctx.send(
                        self.lock_svc,
                        Msg::LockAcquire {
                            name: FUXI_MASTER.to_owned(),
                            ttl_s: self.cfg.lease_ttl.as_secs_f64(),
                        },
                    );
                }
                ctx.timer(self.cfg.keepalive_interval, TIMER_KEEPALIVE);
            }
            TIMER_BATCH
                if self.role != Role::Standby => {
                    self.flush_batches(ctx);
                    ctx.timer(self.cfg.batch_interval, TIMER_BATCH);
                }
            TIMER_ROLLUP
                if self.role != Role::Standby => {
                    self.rollup(ctx);
                    ctx.timer(self.cfg.rollup_interval, TIMER_ROLLUP);
                }
            TIMER_REBUILD_DONE => self.finish_rebuild(ctx),
            TIMER_METRICS
                if self.role != Role::Standby => {
                    self.metrics_tick(ctx);
                    ctx.timer(
                        SimDuration::from_secs_f64(self.cfg.metrics.window_s),
                        TIMER_METRICS,
                    );
                }
            _ => {}
        }
    }
}
