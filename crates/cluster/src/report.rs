//! Table and series printers shared by the experiment binaries.

use fuxi_sim::Metrics;

/// Prints an aligned ASCII table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let s: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("| {} |", s.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        line(row);
    }
}

/// Time-weighted mean of a series over `[from_s, to_s]` (steady-state
/// windows). Each pair of adjacent samples contributes its trapezoid
/// area, so unevenly spaced samples — bursts of scheduler activity
/// between quiet stretches — do not skew the figure the way a plain
/// per-point average would.
pub fn series_mean_window(metrics: &Metrics, name: &str, from_s: f64, to_s: f64) -> f64 {
    let pts: Vec<(f64, f64)> = metrics
        .series(name)
        .iter()
        .filter(|&&(t, _)| t >= from_s && t <= to_s)
        .copied()
        .collect();
    match pts.len() {
        0 => 0.0,
        1 => pts[0].1,
        _ => {
            let span = pts[pts.len() - 1].0 - pts[0].0;
            if span <= 0.0 {
                // All samples at one instant: fall back to the plain mean.
                return pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64;
            }
            let area: f64 = pts
                .windows(2)
                .map(|w| (w[1].0 - w[0].0) * (w[0].1 + w[1].1) / 2.0)
                .sum();
            area / span
        }
    }
}

/// Downsamples a series to at most `n` points for printing (keeps shape).
pub fn downsample(series: &[(f64, f64)], n: usize) -> Vec<(f64, f64)> {
    if series.len() <= n || n == 0 {
        return series.to_vec();
    }
    let step = series.len() as f64 / n as f64;
    (0..n)
        .map(|i| series[(i as f64 * step) as usize])
        .collect()
}

/// Renders a compact ASCII sparkline of a series (for figure-shaped
/// output in the terminal).
pub fn sparkline(series: &[(f64, f64)], width: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let pts = downsample(series, width);
    if pts.is_empty() {
        return String::new();
    }
    let min = pts.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
    let max = pts.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-12);
    pts.iter()
        .map(|&(_, v)| {
            let idx = (((v - min) / span) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_preserves_endpoints_shape() {
        let series: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let d = downsample(&series, 10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0], (0.0, 0.0));
        assert!(d[9].0 >= 89.0);
        assert_eq!(downsample(&series[..5], 10).len(), 5);
    }

    #[test]
    fn sparkline_is_monotone_for_monotone_input() {
        let series: Vec<(f64, f64)> = (0..64).map(|i| (i as f64, i as f64)).collect();
        let s = sparkline(&series, 8);
        assert_eq!(s.chars().count(), 8);
        let levels: Vec<u32> = s.chars().map(|c| c as u32).collect();
        assert!(levels.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn series_mean_window_filters() {
        let mut m = Metrics::new();
        for t in 0..10 {
            m.push_series("x", t as f64, t as f64);
        }
        let mean = series_mean_window(&m, "x", 5.0, 9.0);
        assert!((mean - 7.0).abs() < 1e-9);
        assert_eq!(series_mean_window(&m, "missing", 0.0, 1.0), 0.0);
    }

    #[test]
    fn series_mean_window_is_time_weighted() {
        // 10 at t=0..10, then a burst of 50-valued samples in the last
        // second. A per-point mean would say 30; the signal spent 10x as
        // long at 10 as at 50.
        let mut m = Metrics::new();
        m.push_series("u", 0.0, 10.0);
        m.push_series("u", 10.0, 10.0);
        m.push_series("u", 10.0, 50.0);
        m.push_series("u", 11.0, 50.0);
        let mean = series_mean_window(&m, "u", 0.0, 11.0);
        let expected = (10.0 * 10.0 + 1.0 * 50.0) / 11.0;
        assert!((mean - expected).abs() < 1e-9, "mean = {mean}");
        // Degenerate: single point in window.
        assert_eq!(series_mean_window(&m, "u", 10.5, 11.5), 50.0);
    }
}
