//! Cluster-wide live metrics rollup: the paper's incremental status-report
//! idiom applied to telemetry.
//!
//! FuxiAgents and JobMasters push compact [`MetricsReport`]s to the
//! primary FuxiMaster on their existing heartbeat cadences; the master
//! folds them — together with its own scheduler-derived readings — into a
//! [`ClusterView`] held in a shared [`MetricsHub`]. The hub outlives any
//! single master (it is cluster infrastructure, like the name registry),
//! so a standby taking over inherits the view and the pending-age clocks
//! keep running across a failover — exactly what lets the watchdog see the
//! stall the failover caused.
//!
//! Reports carry **cumulative** counters, not deltas: the view diffs
//! successive values per sender, so a lost or reordered report skews
//! nothing once the next one lands (the same idempotence argument the
//! paper makes for resource-state updates). Types here are raw-int /
//! `std`-only so the identical plane runs under the deterministic sim
//! kernel (sim seconds) and `fuxi-rt` (wall seconds since runtime epoch).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::export::json_string;
use crate::slo::{SloAlert, SloRules};
use crate::window::{WindowRing, DEFAULT_RETAIN};

/// Configuration of the metrics plane, threaded through master/agent/JM
/// configs so benchmarks can price the plane on vs off.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsPlaneConfig {
    /// Master-side switch: rollup timer, report ingestion, watchdog.
    pub enabled: bool,
    /// Window width for the rollup rings, seconds.
    pub window_s: f64,
    /// Windows retained per ring.
    pub retain: usize,
    /// Watchdog thresholds.
    pub rules: SloRules,
    /// Probe unit for the fragmentation reading: free memory on machines
    /// with less than this free is considered stranded.
    pub frag_probe_mem_mb: u64,
}

impl Default for MetricsPlaneConfig {
    fn default() -> Self {
        MetricsPlaneConfig {
            enabled: true,
            window_s: 1.0,
            retain: DEFAULT_RETAIN,
            rules: SloRules::default(),
            frag_probe_mem_mb: 2048,
        }
    }
}

/// One agent's status snapshot, pushed on the heartbeat cadence.
/// Counters (`worker_starts`, `worker_exits`, `launch_failures`) are
/// cumulative since agent start.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct AgentReport {
    /// Machine index of the reporting agent.
    pub machine: u32,
    /// Sender-side timestamp, seconds.
    pub t_s: f64,
    /// Machine capacity.
    pub total_cpu_milli: u64,
    /// Machine capacity.
    pub total_mem_mb: u64,
    /// Resources actually in use by workers and resident JobMasters.
    pub used_cpu_milli: u64,
    /// Resources actually in use by workers and resident JobMasters.
    pub used_mem_mb: u64,
    /// Live worker processes.
    pub workers: u32,
    /// Workers ever started (cumulative).
    pub worker_starts: u64,
    /// Workers ever exited, any reason (cumulative).
    pub worker_exits: u64,
    /// Launch failures (cumulative).
    pub launch_failures: u64,
    /// Node load reading from the health plugin.
    pub load: f64,
}

/// One job's progress snapshot, pushed by its JobMaster on the
/// housekeeping cadence. Instance counters are cumulative.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct JobReport {
    /// Owning application id.
    pub app: u32,
    /// Job id.
    pub job: u32,
    /// Sender-side timestamp, seconds.
    pub t_s: f64,
    /// Tasks in the job DAG.
    pub tasks_total: u32,
    /// Tasks fully finished.
    pub tasks_finished: u32,
    /// Instances across all tasks.
    pub instances_total: u64,
    /// Instances currently running.
    pub instances_running: u64,
    /// Instances finished (cumulative).
    pub instances_finished: u64,
    /// Worker processes currently attached.
    pub workers_active: u64,
    /// Instances waiting for a grant right now.
    pub pending_instances: u64,
}

/// The wire payload of the in-band metrics channel.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum MetricsReport {
    /// From a FuxiAgent.
    Agent(AgentReport),
    /// From a JobMaster.
    Job(JobReport),
}

/// Scheduler-derived readings the master computes itself each window and
/// folds into the view alongside the pushed reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MasterRollup {
    /// Rollup time, seconds.
    pub t_s: f64,
    /// Jobs finished per second over the retained complete windows.
    pub jobs_per_sec: f64,
    /// Jobs submitted since master start.
    pub jobs_submitted_total: u64,
    /// Jobs finished since master start.
    pub jobs_finished_total: u64,
    /// Windowed sched-decision latency quantiles, seconds.
    pub sched_p50_s: f64,
    /// Windowed sched-decision latency quantiles, seconds.
    pub sched_p95_s: f64,
    /// Windowed sched-decision latency quantiles, seconds.
    pub sched_p99_s: f64,
    /// Sched decisions inside the retained windows.
    pub sched_count_win: u64,
    /// Engine cluster capacity.
    pub total_cpu_milli: u64,
    /// Engine cluster capacity.
    pub total_mem_mb: u64,
    /// Engine planned (granted) resources.
    pub planned_cpu_milli: u64,
    /// Engine planned (granted) resources.
    pub planned_mem_mb: u64,
    /// Waiting-queue entries in the engine.
    pub waiting_entries: u64,
    /// Total free memory in the pool.
    pub free_mem_mb: u64,
    /// Free memory stranded on machines below the probe size.
    pub stranded_free_mem_mb: u64,
    /// Largest single-machine free memory.
    pub largest_free_mem_mb: u64,
    /// Master epoch (increments on failover).
    pub master_epoch: u32,
}

/// The cluster-wide rollup the scrape endpoint, watchdog, and `fuxitop`
/// read. One instance lives in the [`MetricsHub`]; the primary master
/// updates it once per window and on every inbound report.
#[derive(Debug, Clone, Default)]
pub struct ClusterView {
    /// Window width the view was built with, seconds.
    pub window_s: f64,
    /// Scheduler-derived readings from the last rollup.
    pub rollup: MasterRollup,
    /// Planned-over-capacity utilization (CPU), 0..=1.
    pub util_cpu: f64,
    /// Planned-over-capacity utilization (memory), 0..=1.
    pub util_mem: f64,
    /// Stranded fraction of free memory (see `MetricsPlaneConfig`).
    pub frag_ratio: f64,
    /// Windowed sched p99 copied from the rollup, seconds (watchdog input).
    pub sched_p99_s: f64,
    /// Sched samples inside the retained windows (watchdog input).
    pub sched_count_win: u64,
    /// Sum of pending instances over all reporting jobs.
    pub pending_instances: u64,
    /// Age of the oldest continuously-pending job, seconds.
    pub oldest_pending_age_s: f64,
    /// Instances finished per second (from job-report diffs).
    pub instances_per_sec: f64,
    /// Live runtime: total sampled mailbox backlog (0 under the sim).
    pub mailbox_depth: u64,
    /// Live runtime: mailbox high-water mark (0 under the sim).
    pub mailbox_hwm: u64,
    /// Latest report per agent, keyed by machine.
    pub agents: BTreeMap<u32, AgentReport>,
    /// Latest report per live job, keyed by job id.
    pub jobs: BTreeMap<u32, JobReport>,
    /// Currently-active alerts (raised, not yet cleared).
    pub alerts: Vec<SloAlert>,
    /// Raise transitions since cluster start.
    pub alerts_total: u64,
    /// Reports ingested since cluster start.
    pub reports_received: u64,
    /// When each job first went (and stayed) pending, for the age rule.
    pending_since: BTreeMap<u32, f64>,
    /// Windowed instances-finished deltas, for `instances_per_sec`.
    inst_ring: WindowRing,
}

impl ClusterView {
    /// Empty view with the given window width.
    pub fn new(window_s: f64) -> ClusterView {
        ClusterView {
            window_s,
            inst_ring: WindowRing::new(window_s.max(1e-3), DEFAULT_RETAIN),
            ..ClusterView::default()
        }
    }

    /// Ingests one pushed report at view time `now_s`.
    pub fn apply_report(&mut self, now_s: f64, report: &MetricsReport) {
        self.reports_received += 1;
        match report {
            MetricsReport::Agent(a) => {
                self.agents.insert(a.machine, *a);
            }
            MetricsReport::Job(j) => {
                let prev = self.jobs.insert(j.job, *j);
                let prev_fin = prev.map_or(0, |p| p.instances_finished);
                if j.instances_finished > prev_fin {
                    self.inst_ring.observe(now_s, (j.instances_finished - prev_fin) as f64);
                }
                if j.pending_instances > 0 {
                    self.pending_since.entry(j.job).or_insert(now_s);
                } else {
                    self.pending_since.remove(&j.job);
                }
                // A fully-finished job stops reporting; drop it from the
                // live table so the view tracks running work.
                if j.tasks_finished >= j.tasks_total
                    && j.instances_running == 0
                    && j.pending_instances == 0
                {
                    self.jobs.remove(&j.job);
                    self.pending_since.remove(&j.job);
                }
            }
        }
    }

    /// Folds the master's own per-window readings in and refreshes every
    /// derived field the watchdog reads.
    pub fn apply_rollup(&mut self, r: MasterRollup) {
        self.util_cpu = ratio(r.planned_cpu_milli, r.total_cpu_milli);
        self.util_mem = ratio(r.planned_mem_mb, r.total_mem_mb);
        self.frag_ratio = ratio(r.stranded_free_mem_mb, r.free_mem_mb);
        self.sched_p99_s = r.sched_p99_s;
        self.sched_count_win = r.sched_count_win;
        self.pending_instances = self.jobs.values().map(|j| j.pending_instances).sum();
        self.oldest_pending_age_s = self
            .pending_since
            .values()
            .map(|t| (r.t_s - t).max(0.0))
            .fold(0.0, f64::max);
        self.instances_per_sec = self.inst_ring.rate_per_sec(r.t_s);
        self.rollup = r;
    }

    /// Records alert transitions: updates the active list and totals.
    pub fn apply_alerts(&mut self, transitions: &[SloAlert]) {
        for a in transitions {
            if a.raised {
                self.alerts_total += 1;
                self.alerts.push(*a);
            } else {
                self.alerts.retain(|act| act.rule != a.rule);
            }
        }
    }

    /// Resources in actual use, summed over agent reports.
    pub fn used(&self) -> (u64, u64) {
        let cpu = self.agents.values().map(|a| a.used_cpu_milli).sum();
        let mem = self.agents.values().map(|a| a.used_mem_mb).sum();
        (cpu, mem)
    }

    /// Compact single-object JSON summary (no per-agent / per-job detail)
    /// — what `bench_live` embeds in BENCH_live.json.
    pub fn summary_json(&self) -> String {
        let r = &self.rollup;
        let (used_cpu, used_mem) = self.used();
        let mut s = String::with_capacity(512);
        s.push('{');
        push_kv(&mut s, "t_s", &fmt_f(r.t_s));
        push_kv(&mut s, "jobs_per_sec", &fmt_f(r.jobs_per_sec));
        push_kv(&mut s, "jobs_submitted_total", &r.jobs_submitted_total.to_string());
        push_kv(&mut s, "jobs_finished_total", &r.jobs_finished_total.to_string());
        push_kv(&mut s, "instances_per_sec", &fmt_f(self.instances_per_sec));
        push_kv(&mut s, "util_cpu", &fmt_f(self.util_cpu));
        push_kv(&mut s, "util_mem", &fmt_f(self.util_mem));
        push_kv(&mut s, "used_cpu_milli", &used_cpu.to_string());
        push_kv(&mut s, "used_mem_mb", &used_mem.to_string());
        push_kv(&mut s, "sched_p50_s", &fmt_f(r.sched_p50_s));
        push_kv(&mut s, "sched_p95_s", &fmt_f(r.sched_p95_s));
        push_kv(&mut s, "sched_p99_s", &fmt_f(r.sched_p99_s));
        push_kv(&mut s, "sched_count_win", &r.sched_count_win.to_string());
        push_kv(&mut s, "waiting_entries", &r.waiting_entries.to_string());
        push_kv(&mut s, "pending_instances", &self.pending_instances.to_string());
        push_kv(&mut s, "oldest_pending_age_s", &fmt_f(self.oldest_pending_age_s));
        push_kv(&mut s, "frag_ratio", &fmt_f(self.frag_ratio));
        push_kv(&mut s, "free_mem_mb", &r.free_mem_mb.to_string());
        push_kv(&mut s, "mailbox_depth", &self.mailbox_depth.to_string());
        push_kv(&mut s, "mailbox_hwm", &self.mailbox_hwm.to_string());
        push_kv(&mut s, "master_epoch", &r.master_epoch.to_string());
        push_kv(&mut s, "agents", &self.agents.len().to_string());
        push_kv(&mut s, "jobs_live", &self.jobs.len().to_string());
        push_kv(&mut s, "alerts_active", &self.alerts.len().to_string());
        push_kv(&mut s, "alerts_total", &self.alerts_total.to_string());
        push_kv(&mut s, "reports_received", &self.reports_received.to_string());
        s.pop(); // trailing comma
        s.push('}');
        s
    }

    /// Full JSON document: the summary plus per-agent rows, per-job rows,
    /// and active alerts. Served by the scrape endpoint at `/json`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push('{');
        s.push_str("\"summary\":");
        s.push_str(&self.summary_json());
        s.push_str(",\"agents\":[");
        for (i, a) in self.agents.values().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_kv(&mut s, "machine", &a.machine.to_string());
            push_kv(&mut s, "t_s", &fmt_f(a.t_s));
            push_kv(&mut s, "used_cpu_milli", &a.used_cpu_milli.to_string());
            push_kv(&mut s, "used_mem_mb", &a.used_mem_mb.to_string());
            push_kv(&mut s, "total_cpu_milli", &a.total_cpu_milli.to_string());
            push_kv(&mut s, "total_mem_mb", &a.total_mem_mb.to_string());
            push_kv(&mut s, "workers", &a.workers.to_string());
            push_kv(&mut s, "worker_starts", &a.worker_starts.to_string());
            push_kv(&mut s, "worker_exits", &a.worker_exits.to_string());
            push_kv(&mut s, "launch_failures", &a.launch_failures.to_string());
            push_kv(&mut s, "load", &fmt_f(a.load));
            s.pop();
            s.push('}');
        }
        s.push_str("],\"jobs\":[");
        for (i, j) in self.jobs.values().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            push_kv(&mut s, "app", &j.app.to_string());
            push_kv(&mut s, "job", &j.job.to_string());
            push_kv(&mut s, "t_s", &fmt_f(j.t_s));
            push_kv(&mut s, "tasks_total", &j.tasks_total.to_string());
            push_kv(&mut s, "tasks_finished", &j.tasks_finished.to_string());
            push_kv(&mut s, "instances_total", &j.instances_total.to_string());
            push_kv(&mut s, "instances_running", &j.instances_running.to_string());
            push_kv(&mut s, "instances_finished", &j.instances_finished.to_string());
            push_kv(&mut s, "workers_active", &j.workers_active.to_string());
            push_kv(&mut s, "pending_instances", &j.pending_instances.to_string());
            s.pop();
            s.push('}');
        }
        s.push_str("],\"alerts\":[");
        for (i, a) in self.alerts.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('{');
            s.push_str("\"rule\":");
            s.push_str(&json_string(a.rule.name()));
            s.push(',');
            push_kv(&mut s, "value", &fmt_f(a.value));
            push_kv(&mut s, "threshold", &fmt_f(a.threshold));
            push_kv(&mut s, "t_s", &fmt_f(a.t_s));
            s.pop();
            s.push('}');
        }
        s.push_str("]}");
        s
    }

    /// Prometheus text exposition of the rollup. Served at `/metrics`.
    pub fn to_prometheus(&self) -> String {
        let r = &self.rollup;
        let (used_cpu, used_mem) = self.used();
        let mut s = String::with_capacity(4096);
        let mut g = |name: &str, help: &str, v: String| {
            s.push_str("# HELP ");
            s.push_str(name);
            s.push(' ');
            s.push_str(help);
            s.push_str("\n# TYPE ");
            s.push_str(name);
            s.push_str(" gauge\n");
            s.push_str(name);
            s.push(' ');
            s.push_str(&v);
            s.push('\n');
        };
        g("fuxi_jobs_per_sec", "Jobs finished per second (windowed)", fmt_f(r.jobs_per_sec));
        g(
            "fuxi_jobs_finished_total",
            "Jobs finished since master start",
            r.jobs_finished_total.to_string(),
        );
        g(
            "fuxi_jobs_submitted_total",
            "Jobs submitted since master start",
            r.jobs_submitted_total.to_string(),
        );
        g(
            "fuxi_instances_per_sec",
            "Instances finished per second (windowed)",
            fmt_f(self.instances_per_sec),
        );
        g("fuxi_util_cpu", "Planned CPU over capacity", fmt_f(self.util_cpu));
        g("fuxi_util_mem", "Planned memory over capacity", fmt_f(self.util_mem));
        g("fuxi_used_cpu_milli", "CPU in actual use (agent-reported)", used_cpu.to_string());
        g("fuxi_used_mem_mb", "Memory in actual use (agent-reported)", used_mem.to_string());
        g("fuxi_sched_p50_seconds", "Sched decision p50 (windowed)", fmt_f(r.sched_p50_s));
        g("fuxi_sched_p95_seconds", "Sched decision p95 (windowed)", fmt_f(r.sched_p95_s));
        g("fuxi_sched_p99_seconds", "Sched decision p99 (windowed)", fmt_f(r.sched_p99_s));
        g("fuxi_waiting_entries", "Engine waiting-queue entries", r.waiting_entries.to_string());
        g(
            "fuxi_pending_instances",
            "Pending instances over reporting jobs",
            self.pending_instances.to_string(),
        );
        g(
            "fuxi_oldest_pending_age_seconds",
            "Age of oldest continuously-pending job",
            fmt_f(self.oldest_pending_age_s),
        );
        g("fuxi_frag_ratio", "Stranded fraction of free memory", fmt_f(self.frag_ratio));
        g("fuxi_free_mem_mb", "Free memory in the pool", r.free_mem_mb.to_string());
        g("fuxi_mailbox_depth", "Sampled live mailbox backlog", self.mailbox_depth.to_string());
        g("fuxi_mailbox_hwm", "Mailbox high-water mark", self.mailbox_hwm.to_string());
        g("fuxi_master_epoch", "Master failovers observed", r.master_epoch.to_string());
        g("fuxi_agents_reporting", "Agents with a report in the view", self.agents.len().to_string());
        g("fuxi_jobs_live", "Jobs currently reporting", self.jobs.len().to_string());
        g("fuxi_alerts_total", "SLO raise transitions", self.alerts_total.to_string());
        g(
            "fuxi_reports_received_total",
            "Metrics reports ingested",
            self.reports_received.to_string(),
        );
        // Per-rule active flags and per-agent health, labelled.
        s.push_str("# HELP fuxi_alert_active Whether an SLO rule is currently breached\n");
        s.push_str("# TYPE fuxi_alert_active gauge\n");
        for rule in crate::slo::SloRuleKind::ALL {
            let active = self.alerts.iter().any(|a| a.rule == rule);
            s.push_str(&format!(
                "fuxi_alert_active{{rule=\"{}\"}} {}\n",
                rule.name(),
                u8::from(active)
            ));
        }
        s.push_str("# HELP fuxi_agent_used_mem_mb Per-agent memory in use\n");
        s.push_str("# TYPE fuxi_agent_used_mem_mb gauge\n");
        for a in self.agents.values() {
            s.push_str(&format!(
                "fuxi_agent_used_mem_mb{{machine=\"{}\"}} {}\n",
                a.machine, a.used_mem_mb
            ));
        }
        s.push_str("# HELP fuxi_agent_workers Per-agent live worker processes\n");
        s.push_str("# TYPE fuxi_agent_workers gauge\n");
        for a in self.agents.values() {
            s.push_str(&format!(
                "fuxi_agent_workers{{machine=\"{}\"}} {}\n",
                a.machine, a.workers
            ));
        }
        s
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn fmt_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "0.0".to_owned()
    }
}

fn push_kv(s: &mut String, key: &str, val: &str) {
    s.push_str(&json_string(key));
    s.push(':');
    s.push_str(val);
    s.push(',');
}

/// Shared handle to the cluster's [`ClusterView`]. Cheap to clone; the
/// sim harness and `LiveCluster` create one and hand it to every master
/// (primary and standby), the scrape server, and the runtime's mailbox
/// sampler — the same sharing idiom as the name registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    inner: Arc<Mutex<ClusterView>>,
}

impl MetricsHub {
    /// Hub around an empty view with the given window width.
    pub fn new(window_s: f64) -> MetricsHub {
        MetricsHub {
            inner: Arc::new(Mutex::new(ClusterView::new(window_s))),
        }
    }

    /// Runs `f` under the view lock and returns its result.
    pub fn update<R>(&self, f: impl FnOnce(&mut ClusterView) -> R) -> R {
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        f(&mut guard)
    }

    /// Clones the current view out.
    pub fn snapshot(&self) -> ClusterView {
        self.update(|v| v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job_report(job: u32, finished: u64, pending: u64) -> MetricsReport {
        MetricsReport::Job(JobReport {
            app: 1,
            job,
            tasks_total: 2,
            tasks_finished: 0,
            instances_total: 10,
            instances_running: 3,
            instances_finished: finished,
            workers_active: 3,
            pending_instances: pending,
            t_s: 0.0,
        })
    }

    #[test]
    fn cumulative_job_reports_diff_into_rates() {
        let mut v = ClusterView::new(1.0);
        v.apply_report(0.5, &job_report(7, 0, 4));
        v.apply_report(2.5, &job_report(7, 10, 0));
        v.apply_rollup(MasterRollup {
            t_s: 4.0,
            ..MasterRollup::default()
        });
        // 10 instances landed in window 2; span from there to the rollup
        // window is 2 s, so 5 instances/s.
        assert!((v.instances_per_sec - 5.0).abs() < 1e-9, "{}", v.instances_per_sec);
        assert_eq!(v.pending_instances, 0);
        assert_eq!(v.reports_received, 2);
    }

    #[test]
    fn pending_age_tracks_first_continuous_pending() {
        let mut v = ClusterView::new(1.0);
        v.apply_report(1.0, &job_report(3, 0, 5));
        v.apply_report(4.0, &job_report(3, 2, 5)); // still pending: clock keeps t=1
        v.apply_rollup(MasterRollup {
            t_s: 9.0,
            ..MasterRollup::default()
        });
        assert!((v.oldest_pending_age_s - 8.0).abs() < 1e-9);
        // Pending clears: age resets.
        v.apply_report(10.0, &job_report(3, 4, 0));
        v.apply_rollup(MasterRollup {
            t_s: 11.0,
            ..MasterRollup::default()
        });
        assert_eq!(v.oldest_pending_age_s, 0.0);
    }

    #[test]
    fn finished_jobs_leave_the_live_table() {
        let mut v = ClusterView::new(1.0);
        v.apply_report(0.5, &job_report(9, 0, 4));
        assert_eq!(v.jobs.len(), 1);
        v.apply_report(
            2.0,
            &MetricsReport::Job(JobReport {
                app: 1,
                job: 9,
                tasks_total: 2,
                tasks_finished: 2,
                instances_total: 10,
                instances_running: 0,
                instances_finished: 10,
                workers_active: 0,
                pending_instances: 0,
                t_s: 2.0,
            }),
        );
        assert!(v.jobs.is_empty());
    }

    #[test]
    fn exposition_formats_are_well_formed() {
        let mut v = ClusterView::new(1.0);
        v.apply_report(
            0.5,
            &MetricsReport::Agent(AgentReport {
                machine: 3,
                total_cpu_milli: 24_000,
                total_mem_mb: 96 * 1024,
                used_cpu_milli: 6_000,
                used_mem_mb: 10_240,
                workers: 4,
                worker_starts: 9,
                worker_exits: 5,
                launch_failures: 1,
                load: 0.5,
                t_s: 0.5,
            }),
        );
        v.apply_report(0.6, &job_report(1, 2, 3));
        v.apply_rollup(MasterRollup {
            t_s: 1.0,
            jobs_per_sec: 1.5,
            total_cpu_milli: 24_000,
            total_mem_mb: 96 * 1024,
            planned_cpu_milli: 12_000,
            planned_mem_mb: 48 * 1024,
            ..MasterRollup::default()
        });
        let prom = v.to_prometheus();
        assert!(prom.contains("fuxi_jobs_per_sec 1.500000"));
        assert!(prom.contains("fuxi_util_cpu 0.500000"));
        assert!(prom.contains("fuxi_agent_workers{machine=\"3\"} 4"));
        let json = v.to_json();
        assert!(json.contains("\"jobs_per_sec\":1.500000"));
        assert!(json.contains("\"machine\":3"));
        assert!(json.contains("\"pending_instances\":3"));
        let hub = MetricsHub::new(1.0);
        hub.update(|view| *view = v.clone());
        assert_eq!(hub.snapshot().to_json(), json);
    }
}
