//! Differential tests of the causal tracing layer: every job-scoped
//! event in an end-to-end run must carry the trace id minted at submit
//! (the causal chain client → FuxiMaster → FuxiAgent → JobMaster →
//! TaskWorker never drops), and the event stream must be a pure function
//! of the schedule — `reference_mode` (flat scans) and the indexed
//! scheduler must emit byte-identical streams.

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::sim::obs::export::record_line;
use fuxi::sim::SimTime;
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};
use std::collections::BTreeSet;

fn small_job(maps: u32, reduces: u32, dur: f64) -> fuxi::job::JobDesc {
    wordcount_job(&MapReduceParams {
        maps,
        reduces,
        map_duration_s: dur,
        reduce_duration_s: dur,
        jitter: 0.1,
        binary_mb: 50.0,
        ..Default::default()
    })
}

/// Runs two jobs to completion and returns the cluster for inspection.
fn run_two_jobs(reference_mode: bool) -> (Cluster, Vec<u32>) {
    let mut cfg = ClusterConfig {
        n_machines: 10,
        rack_size: 5,
        seed: 29,
        ..ClusterConfig::default()
    };
    cfg.master.engine.reference_mode = reference_mode;
    let mut c = Cluster::new(cfg);
    let a = c.submit(&small_job(8, 2, 5.0), &SubmitOpts::default());
    let b = c.submit(&small_job(4, 2, 3.0), &SubmitOpts::default());
    for job in [a, b] {
        let (ok, _) = c
            .run_until_job_done(job, SimTime::from_secs(900))
            .expect("job finishes");
        assert!(ok, "job {job:?} must succeed");
    }
    (c, vec![a.0, b.0])
}

/// Event names that are always causally downstream of one job's submit.
const JOB_SCOPED: [&str; 11] = [
    "job_submitted",
    "jm_launch_requested",
    "jm_started",
    "jm_exited",
    "grant",
    "revoke",
    "request_applied",
    "worker_launch_requested",
    "worker_started",
    "instance_assigned",
    "job_finished",
];

#[test]
fn every_job_scoped_event_carries_the_submit_trace() {
    let (c, jobs) = run_two_jobs(false);
    let valid: BTreeSet<u64> = jobs.iter().map(|j| *j as u64 + 1).collect();
    let records = &c.world.tracer().records;
    assert!(records.len() > 50, "expected a rich stream, got {}", records.len());

    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    for r in records {
        let name = r.event.name();
        if JOB_SCOPED.contains(&name) {
            assert!(
                valid.contains(&r.trace.0),
                "{} at t={} carries trace {} — not minted by any submit ({:?})",
                name,
                r.t_s,
                r.trace.0,
                r.event
            );
            seen.insert(name);
        }
        // Worker/instance events may legitimately be unattributed only for
        // adopted orphans; none exist in this fault-free run.
        if ["worker_exited", "instance_finished"].contains(&name) {
            assert!(
                valid.contains(&r.trace.0),
                "{} lost its trace: {:?}",
                name,
                r.event
            );
        }
    }
    // The run must exercise the whole lifecycle, not vacuously pass.
    for required in [
        "job_submitted",
        "jm_launch_requested",
        "jm_started",
        "grant",
        "request_applied",
        "worker_launch_requested",
        "worker_started",
        "instance_assigned",
        "job_finished",
    ] {
        assert!(seen.contains(required), "run never emitted {required}");
    }

    // Each job's chain starts at its submit and ends at its finish, and
    // the by-trace filter returns exactly that chain.
    for &job in &jobs {
        let trace = fuxi::sim::TraceId::from_job(job);
        let chain: Vec<_> = c.world.tracer().by_trace(trace).collect();
        assert_eq!(chain.first().map(|r| r.event.name()), Some("job_submitted"));
        assert_eq!(chain.last().map(|r| r.event.name()), Some("job_finished"));
        assert!(chain.iter().all(|r| r.trace == trace));
    }
}

#[test]
fn reference_mode_emits_an_identical_event_stream() {
    // The indexed scheduler is a pure optimisation: with the same seed and
    // workload, the flat-scan reference engine must take the same
    // decisions, so the causal event streams (times, actors, traces,
    // payloads) must match line for line. Spans are excluded — their
    // wall-clock durations measure the host, not the schedule.
    let (indexed, _) = run_two_jobs(false);
    let (reference, _) = run_two_jobs(true);
    let lines = |c: &Cluster| -> Vec<String> {
        c.world.tracer().records.iter().map(record_line).collect()
    };
    let a = lines(&indexed);
    let b = lines(&reference);
    assert_eq!(a.len(), b.len(), "stream lengths diverge");
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(x, y, "streams diverge at event {i}");
    }
}
