//! Criterion: locality-tree hot-path operations — the data structure
//! behind the paper's "micro-seconds level scheduling" claim.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuxi_core::scheduler::{LocalityTree, QueueKey};
use fuxi_proto::{AppId, MachineId, Priority, RackId, ResourceVec, UnitId};

fn key(i: u64) -> QueueKey {
    QueueKey {
        priority: Priority((i % 7) as u16 * 100),
        seq: i,
        app: AppId(i as u32),
        unit: UnitId(0),
    }
}

fn populated(n: u64) -> LocalityTree {
    let fp = ResourceVec::new(500, 2048);
    let mut t = LocalityTree::new();
    for i in 0..n {
        t.enqueue_cluster(key(i), &fp);
        t.enqueue_machine(MachineId((i % 1000) as u32), key(i), &fp);
        t.enqueue_rack(RackId((i % 20) as u32), key(i), &fp);
    }
    t
}

fn bench(c: &mut Criterion) {
    let fp = ResourceVec::new(500, 2048);
    let free = ResourceVec::cores_mb(12, 96 * 1024);

    c.bench_function("tree_enqueue_dequeue_cluster", |b| {
        let mut t = populated(10_000);
        let mut i = 1_000_000u64;
        b.iter(|| {
            i += 1;
            let k = key(i);
            t.enqueue_cluster(k, &fp);
            t.dequeue_cluster(&k);
        });
    });

    c.bench_function("tree_candidates_10k_waiting", |b| {
        let t = populated(10_000);
        b.iter(|| {
            black_box(t.candidates_for_machine(
                MachineId(5),
                RackId(5),
                black_box(&free),
                64,
            ))
        });
    });

    c.bench_function("tree_candidates_hopeless_queue", |b| {
        // The early-exit path: free resources smaller than anything queued.
        let mut t = LocalityTree::new();
        let big = ResourceVec::cores_mb(64, 512 * 1024);
        for i in 0..10_000 {
            t.enqueue_cluster(key(i), &big);
        }
        let tiny = ResourceVec::new(100, 100);
        b.iter(|| {
            black_box(t.candidates_for_machine(MachineId(0), RackId(0), black_box(&tiny), 64))
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
